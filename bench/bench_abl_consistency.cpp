// Ablation (S III-E): conflicting-memory-access tracking granularity.
// The dgemm-style workload overlaps non-blocking gets of matrices A, B
// with accumulates into matrix C on the same targets. Under naive
// per-target tracking every get must first fence the pending
// accumulates (false positives); per-region 8-bit status words
// eliminate the forced fences entirely.
#include "common.hpp"
#include "ga/global_array.hpp"

using namespace pgasq;

namespace {

struct Outcome {
  double wall_ms;
  std::uint64_t forced_fences;
  std::uint64_t fence_calls;
};

Outcome run(const Config& cli, armci::ConsistencyMode mode) {
  armci::WorldConfig cfg = bench::make_world_config(cli, /*ranks=*/16);
  cfg.armci.consistency = mode;
  const std::int64_t n = cli.get_int("n", 256);
  const std::int64_t blk = cli.get_int("block", 32);
  armci::World world(cfg);
  Time t0 = 0, t1 = 0;
  world.spmd([&](armci::Comm& comm) {
    ga::GlobalArray a(comm, n, n);
    ga::GlobalArray b(comm, n, n);
    ga::GlobalArray c(comm, n, n);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 0.001 * (i + j); });
    b.fill_local([](std::int64_t i, std::int64_t j) { return i == j ? 1.0 : 0.0; });
    c.fill_local(0.0);
    comm.barrier();
    if (comm.rank() == 0) t0 = comm.now();
    // Round-robin block tasks: get A(i,k), B(k,j); "compute"; acc C(i,j).
    const std::int64_t nb = n / blk;
    std::vector<double> abuf(static_cast<std::size_t>(blk * blk));
    std::vector<double> bbuf(abuf.size());
    std::vector<double> cbuf(abuf.size(), 0.0);
    std::int64_t task = 0;
    for (std::int64_t i = 0; i < nb; ++i) {
      for (std::int64_t j = 0; j < nb; ++j) {
        for (std::int64_t k = 0; k < nb; ++k, ++task) {
          if (task % comm.nprocs() != comm.rank()) continue;
          armci::Handle h;
          a.nb_get(i * blk, (i + 1) * blk, k * blk, (k + 1) * blk, abuf.data(), blk, h);
          b.nb_get(k * blk, (k + 1) * blk, j * blk, (j + 1) * blk, bbuf.data(), blk, h);
          comm.wait(h);
          comm.compute(from_us(20));  // the local dgemm
          for (std::size_t e = 0; e < cbuf.size(); ++e) cbuf[e] = abuf[e];
          c.acc(1.0, i * blk, (i + 1) * blk, j * blk, (j + 1) * blk, cbuf.data(), blk);
        }
      }
    }
    comm.barrier();
    if (comm.rank() == 0) t1 = comm.now();
  });
  const auto stats = world.total_stats();
  return Outcome{to_ms(t1 - t0), stats.forced_fences, stats.fence_calls};
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_abl_consistency: conflict tracking granularity (dgemm)",
                      "S III-E — cs_tgt (naive) vs cs_mr (per-region)");
  Table table({"tracking", "wall_ms", "forced_fences", "fence_calls"});
  const auto naive = run(cli, armci::ConsistencyMode::kPerTarget);
  const auto region = run(cli, armci::ConsistencyMode::kPerRegion);
  table.row().add(std::string("per-target (naive)")).add(naive.wall_ms, 2)
      .add(naive.forced_fences).add(naive.fence_calls);
  table.row().add(std::string("per-region (cs_mr)")).add(region.wall_ms, 2)
      .add(region.forced_fences).add(region.fence_calls);
  table.print();
  std::printf("per-region removes %.1f%% of forced fences and %.1f%% of wall time\n",
              naive.forced_fences == 0
                  ? 0.0
                  : 100.0 * (double)(naive.forced_fences - region.forced_fences) /
                        (double)naive.forced_fences,
              naive.wall_ms == 0.0
                  ? 0.0
                  : 100.0 * (naive.wall_ms - region.wall_ms) / naive.wall_ms);
  return 0;
}
