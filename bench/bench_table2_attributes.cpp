// Tables I & II: the time/space attributes of the PAMI communication
// objects, measured from the simulator exactly the way the paper
// measured them ("computed by calculating the actual time during
// program execution"), plus the space/time complexity models of
// S III-B evaluated at representative parameter values.
#include "common.hpp"
#include "pami/machine.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  bench::print_banner("bench_table2_attributes: PAMI time & space attributes",
                      "Tables I and II — alpha/beta/gamma/delta/epsilon/rho");

  pami::MachineConfig mcfg;
  mcfg.num_ranks = static_cast<int>(cli.get_int("ranks", 2));
  mcfg.ranks_per_node = 1;
  pami::Machine machine(mcfg);

  Time client_t = 0, context_t = 0, endpoint_t = 0, memregion_t = 0;
  std::vector<std::byte> buffer(4096);
  machine.run([&](pami::Process& proc) {
    if (proc.rank() != 0) return;
    Time t0 = proc.now();
    proc.create_client();
    client_t = proc.now() - t0;
    t0 = proc.now();
    proc.create_context();
    context_t = proc.now() - t0;
    t0 = proc.now();
    proc.create_endpoint(1, 0);
    endpoint_t = proc.now() - t0;
    t0 = proc.now();
    auto region = proc.create_memregion(buffer.data(), buffer.size());
    memregion_t = proc.now() - t0;
    PGASQ_CHECK(region.has_value());
  });

  const auto& p = machine.params();
  Table table({"property", "symbol", "measured"});
  table.row().add(std::string("Endpoint space utilization")).add(std::string("alpha"))
      .add(std::to_string(p.endpoint_bytes) + " bytes");
  table.row().add(std::string("Endpoint creation time")).add(std::string("beta"))
      .add(std::to_string(to_us(endpoint_t)) + " us");
  table.row().add(std::string("Memory region space utilization")).add(std::string("gamma"))
      .add(std::to_string(p.memregion_bytes) + " bytes");
  table.row().add(std::string("Memory region creation time")).add(std::string("delta"))
      .add(std::to_string(to_us(memregion_t)) + " us");
  table.row().add(std::string("Context space utilization")).add(std::string("epsilon"))
      .add(std::to_string(p.context_bytes) + " bytes (modeled)");
  table.row().add(std::string("Context creation time")).add(std::string("rho_t"))
      .add(std::to_string(to_us(context_t)) + " us");
  table.row().add(std::string("Client creation time")).add(std::string("-"))
      .add(std::to_string(to_us(client_t)) + " us");
  table.print();

  // Complexity models of S III-B at representative values.
  std::printf("\nSpace/time models (Eqs 1-6) at rho=2, zeta=4096, sigma=7, tau=3:\n");
  const double rho = 2, zeta = 4096, sigma = 7, tau = 3;
  Table models({"model", "formula", "value"});
  models.row().add(std::string("M_c  (context space)")).add(std::string("eps*rho"))
      .add(std::to_string(static_cast<long long>(p.context_bytes * rho)) + " bytes");
  models.row().add(std::string("T_c  (context time)")).add(std::string("rho_t*rho"))
      .add(std::to_string(to_us(p.context_create) * rho) + " us");
  models.row().add(std::string("M_e  (endpoint space)")).add(std::string("zeta*alpha*rho"))
      .add(std::to_string(static_cast<long long>(zeta * p.endpoint_bytes * rho)) + " bytes");
  models.row().add(std::string("T_e  (endpoint time)")).add(std::string("zeta*beta*rho"))
      .add(std::to_string(to_us(p.endpoint_create) * zeta * rho) + " us");
  models.row().add(std::string("M_r  (region space)")).add(std::string("tau*gamma + sigma*zeta*gamma"))
      .add(std::to_string(static_cast<long long>(
               tau * p.memregion_bytes + sigma * zeta * p.memregion_bytes)) + " bytes");
  models.row().add(std::string("T_r  (region time)")).add(std::string("tau*delta + sigma*delta"))
      .add(std::to_string(to_us(p.memregion_create) * (tau + sigma)) + " us");
  models.print();
  return 0;
}
