// The paper's Figure 10 algorithm, narrated: a small NWChem-style SCF
// Fock build driven by the shared load-balance counter, run twice —
// once with Default progress and once with the Asynchronous Thread —
// to show exactly where the 30% of Figure 11 comes from.
//
//   ./examples/scf_walkthrough [--ranks=64] [--nbf=96] [--block=8]
#include <cstdio>

#include <cstring>

#include "apps/scf.hpp"
#include "core/comm.hpp"
#include "core/report_json.hpp"
#include "fault/fault.hpp"
#include "fault/integrity.hpp"
#include "ft/recovery.hpp"
#include "util/config.hpp"

using namespace pgasq;

namespace {

apps::ScfResult run_mode(const Config& cli, armci::ProgressMode mode,
                         const apps::ScfConfig& scf, bool observe) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 64));
  cfg.machine.ranks_per_node =
      static_cast<int>(cli.get_int("ranks_per_node", cfg.machine.num_ranks >= 16 ? 16 : 1));
  cfg.armci.progress = mode;
  cfg.armci.contexts_per_rank = mode == armci::ProgressMode::kAsyncThread ? 2 : 1;
  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  // End-to-end integrity knobs (--integrity.verify etc.); the layer
  // also self-arms whenever --fault.corrupt_prob is set.
  cfg.machine.integrity = fault::IntegrityConfig::from_config(cli);
  // Collectives-engine knobs ride through opaquely (same contract as
  // the benches): e.g. --coll.algo.allreduce=recdbl pins the energy
  // reduction to a software schedule whose hops show up in traces.
  for (const std::string& key : cli.keys()) {
    if (key.rfind("coll.", 0) == 0) {
      cfg.armci.coll.emplace_back(key.substr(5), cli.get_string(key, ""));
    }
    // Async-runtime knobs ride the same way: --async.scf_overlap=1
    // switches run_scf to the overlapped body (docs/async.md).
    if (key.rfind("async.", 0) == 0) {
      cfg.armci.async.emplace_back(key.substr(6), cli.get_string(key, ""));
    }
  }
  // Fail-stop knobs: with --fault.node_fail=node:at_us scheduled, the
  // run checkpoints and survives the death (docs/faults.md).
  cfg.machine.ft = ft::RuntimeConfig::from_config(cli).liveness;
  // --trace.json_path / --obs.* / --report.json_path apply to the AT
  // run only (`observe`), so one invocation yields one trace.
  if (observe) pami::configure_observability(cli, cfg.machine);
  armci::World world(cfg);
  apps::ScfResult result = apps::run_scf(world, scf);
  if (observe) {
    const std::string report = armci::json_report_path_from_config(cli);
    if (!report.empty()) armci::write_json_report(world, report);
    if (const obs::LinkUsage* lu = world.machine().link_usage()) {
      if (!cfg.machine.obs.link_csv.empty()) {
        lu->write_csv(cfg.machine.obs.link_csv);
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  apps::ScfConfig scf;
  scf.nbf = cli.get_int("nbf", 96);
  scf.block = cli.get_int("block", 8);
  scf.iterations = static_cast<int>(cli.get_int("iterations", 2));
  scf.mean_task_compute = from_us(cli.get_double("task_us", 2000.0));
  scf.ft_checkpoint_interval =
      ft::RuntimeConfig::from_config(cli).checkpoint_interval;
  scf.distributed_guess = cli.get_bool("distributed_guess", false);

  std::printf("SCF Fock build (Fig 10): %lld basis functions, %lld-wide blocks,\n"
              "%lld tasks/iteration, %d iterations, ~%.0f us per task\n\n",
              static_cast<long long>(scf.nbf), static_cast<long long>(scf.block),
              static_cast<long long>(apps::scf_tasks_per_iteration(scf)),
              scf.iterations, to_us(scf.mean_task_compute));
  std::printf("algorithm per task (while SharedCounter < ntasks):\n"
              "    t   = nxtask(SharedCounter)        # fetch-and-add at rank 0\n"
              "    d   = ga_get(D, block pair of t)   # one-sided density fetch\n"
              "    f   = do_work(d)                   # 2e-integral contraction\n"
              "    ga_acc(F, block pair of t, f)      # accumulate Fock matrix\n\n");

  const auto d = run_mode(cli, armci::ProgressMode::kDefault, scf, false);
  const auto at = run_mode(cli, armci::ProgressMode::kAsyncThread, scf, true);

  auto report = [](const char* name, const apps::ScfResult& r) {
    // fock_bits is the checksum's raw IEEE-754 pattern: %.6f rounds
    // away single-bit corruption, so the chaos soak compares this.
    std::uint64_t fock_bits = 0;
    std::memcpy(&fock_bits, &r.fock_checksum, sizeof fock_bits);
    std::printf("%-22s wall %8.2f ms | counter(sum) %8.2f ms | gets(sum) %8.2f ms"
                " | checksum %.6f | fock_bits %016llx\n",
                name, to_ms(r.wall_time), to_ms(r.counter_time), to_ms(r.get_time),
                r.fock_checksum, static_cast<unsigned long long>(fock_bits));
  };
  report("Default (D):", d);
  report("Async thread (AT):", at);
  std::printf("\nAT cuts execution time by %.1f%% — rank 0 no longer has to reach\n"
              "an explicit progress call before the counter is serviced (S III-D).\n",
              100.0 * (to_ms(d.wall_time) - to_ms(at.wall_time)) / to_ms(d.wall_time));
  return d.fock_checksum == at.fock_checksum ? 0 : 1;
}
