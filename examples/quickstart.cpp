// Quickstart: the smallest complete pgasq program.
//
// Builds a simulated 8-rank Blue Gene/Q partition, allocates a global
// memory segment, and shows the four core ARMCI idioms: one-sided
// put/get, non-blocking transfer with a handle, accumulate + fence,
// and the fetch-and-add load-balance counter.
//
//   ./examples/quickstart [--ranks=8] [--progress=async]
#include <cstdio>
#include <vector>

#include "core/comm.hpp"
#include "fault/fault.hpp"
#include "util/config.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 8));
  if (cli.get_string("progress", "default") == "async") {
    cfg.armci.progress = armci::ProgressMode::kAsyncThread;
    cfg.armci.contexts_per_rank = 2;
  }

  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    const int me = comm.rank();
    const int p = comm.nprocs();

    // 1. Collective allocation: every rank contributes a slab and
    //    learns everyone's remote base address.
    armci::GlobalMem& mem = comm.malloc_collective(sizeof(double) * 64);
    auto* mine = reinterpret_cast<double*>(mem.local(me));
    for (int i = 0; i < 64; ++i) mine[i] = me * 1000.0 + i;
    comm.barrier();

    // 2. One-sided get from the right neighbour — no code runs there.
    const int right = (me + 1) % p;
    double peek[4];
    comm.get(mem.at(right), peek, sizeof peek);
    if (me == 0) {
      std::printf("[rank 0] neighbour %d's first values: %.0f %.0f %.0f %.0f\n",
                  right, peek[0], peek[1], peek[2], peek[3]);
    }

    // 3. Non-blocking put, overlapped with local compute.
    double payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    armci::Handle h;
    comm.nb_put(payload, mem.at(right).offset(sizeof(double) * 32), sizeof payload, h);
    comm.compute(from_us(50));  // useful work while the wire moves bytes
    comm.wait(h);

    // 4. Accumulate into rank 0 and make it remotely visible.
    std::vector<double> ones(8, 1.0);
    comm.acc(1.0, ones.data(), mem.at(0).offset(sizeof(double) * 48), 8);
    comm.fence(0);
    comm.barrier();
    if (me == 0) {
      // Slot 48 started at 48 (the fill above) and every rank added 1.
      std::printf("[rank 0] accumulated slot: %.0f (expected %d)\n",
                  mine[48], 48 + p);
    }

    // 5. The load-balance counter: each rank grabs unique task ids.
    armci::GlobalMem& counter = comm.malloc_collective(sizeof(std::int64_t));
    const std::int64_t my_first_task = comm.fetch_add(counter.at(0), 1);
    comm.barrier();
    if (me == 0) {
      std::printf("[rank 0] my first task id: %lld; total handed out: %lld\n",
                  static_cast<long long>(my_first_task),
                  static_cast<long long>(comm.fetch_add(counter.at(0), 0)));
      std::printf("[rank 0] virtual time elapsed: %.1f us\n", to_us(comm.now()));
    }
    comm.barrier();
  });
  std::printf("quickstart finished at %.1f us of virtual time\n",
              to_us(world.elapsed()));
  return 0;
}
