// Work stealing over PGAS — the paper's intro motivates PGAS models
// by "asynchronous read/writes (get/put) ... for load balancing,
// work-stealing". Each rank owns a task pool in global memory; when a
// rank drains its own pool it steals from victims with a remote
// fetch-and-add on their claim counter and a one-sided get of the task
// descriptor. Run with --steal=0 to see the imbalanced baseline.
//
//   ./examples/work_stealing [--ranks=32] [--tasks=24] [--steal=1]
//                            [--progress=async]
#include <cstdio>
#include <vector>

#include "core/comm.hpp"
#include "fault/fault.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

using namespace pgasq;

namespace {

struct PoolLayout {
  // Per-rank global slab: [claim counter][total][task durations...]
  static constexpr std::size_t kHeader = 2 * sizeof(std::int64_t);
  static std::size_t bytes(std::int64_t capacity) {
    return kHeader + static_cast<std::size_t>(capacity) * sizeof(std::int64_t);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 32));
  if (cli.get_string("progress", "default") == "async") {
    cfg.armci.progress = armci::ProgressMode::kAsyncThread;
    cfg.armci.contexts_per_rank = 2;
  }
  const std::int64_t tasks_per_rank = cli.get_int("tasks", 24);
  const bool steal = cli.get_bool("steal", true);
  // Skew: the first quarter of ranks hold 4x the work of the rest.
  const std::int64_t capacity = 4 * tasks_per_rank;

  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  armci::World world(cfg);
  Time wall = 0;
  std::int64_t executed_total = 0;
  std::int64_t stolen_total = 0;
  world.spmd([&](armci::Comm& comm) {
    const int me = comm.rank();
    const int p = comm.nprocs();
    armci::GlobalMem& pool = comm.malloc_collective(PoolLayout::bytes(capacity));
    auto* header = reinterpret_cast<std::int64_t*>(pool.local(me));
    auto* durations = header + 2;
    // Imbalanced fill: heavy ranks get 4x tasks.
    const bool heavy = me < std::max(1, p / 4);
    const std::int64_t mine = heavy ? 4 * tasks_per_rank : tasks_per_rank;
    Rng rng(static_cast<std::uint64_t>(me) * 7919 + 13);
    header[0] = 0;      // claim counter
    header[1] = mine;   // total tasks in this pool
    for (std::int64_t t = 0; t < mine; ++t) {
      durations[t] = from_us(static_cast<double>(rng.next_in(50, 150)));
    }
    comm.barrier();
    const Time t0 = comm.now();

    std::int64_t executed = 0;
    std::int64_t stolen = 0;
    auto drain_pool = [&](int victim) {
      std::int64_t done_here = 0;
      for (;;) {
        // Claim a task index with a remote fetch-and-add...
        const std::int64_t idx = comm.fetch_add(pool.at(victim), 1);
        std::int64_t total = 0;
        comm.get(pool.at(victim, sizeof(std::int64_t)), &total, sizeof total);
        if (idx >= total) break;
        // ...then fetch its descriptor one-sidedly and run it.
        std::int64_t duration = 0;
        comm.get(pool.at(victim, PoolLayout::kHeader +
                                     static_cast<std::size_t>(idx) * sizeof duration),
                 &duration, sizeof duration);
        comm.compute(duration);
        ++done_here;
        ++executed;
        if (victim != me) ++stolen;
      }
      return done_here;
    };

    drain_pool(me);
    if (steal) {
      // Round-robin victim scan starting after ourselves.
      for (int off = 1; off < p; ++off) drain_pool((me + off) % p);
    }
    comm.barrier();
    if (me == 0) wall = comm.now() - t0;
    executed_total += executed;
    stolen_total += stolen;
    comm.barrier();
  });

  const std::int64_t expected =
      std::max(1, cfg.machine.num_ranks / 4) * 4 * tasks_per_rank +
      (cfg.machine.num_ranks - std::max(1, cfg.machine.num_ranks / 4)) *
          tasks_per_rank;
  std::printf("work stealing: %d ranks, %lld tasks total, stealing %s\n",
              cfg.machine.num_ranks, static_cast<long long>(executed_total),
              steal ? "ON" : "OFF");
  std::printf("  executed %lld/%lld tasks, %lld stolen (%.1f%%)\n",
              static_cast<long long>(executed_total),
              static_cast<long long>(expected),
              static_cast<long long>(stolen_total),
              100.0 * static_cast<double>(stolen_total) /
                  static_cast<double>(executed_total));
  std::printf("  wall (virtual): %.2f ms\n", to_ms(wall));
  return executed_total == expected ? 0 : 1;
}
