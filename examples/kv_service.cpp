// Minimal sharded key-value service on the ARMCI runtime — the
// serving-tier counterpart to the dense examples. Keys hash to a home
// rank; every rank runs both a shard (a slice of one collective
// allocation) and a closed-loop client drawing zipfian keys. Gets are
// one slot fetch, puts take the CAS-version lock, faa lands on the
// hardware AMO path. Pass a fault plan plus kvs.checkpoint_every to
// watch a mid-run node death recover with zero lost acked writes.
//
//   ./examples/kv_service [--ranks=32] [--kvs.keys=2048]
//                         [--kvs.zipf_theta=0.99] [--kvs.get_ratio=0.8]
//                         [--kvs.requests=64] [--kvs.checkpoint_every=16]
#include <cstdio>

#include "core/comm.hpp"
#include "fault/fault.hpp"
#include "kvs/kvs.hpp"
#include "util/config.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const kvs::KvConfig kc = kvs::KvConfig::from_config(cli);

  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 32));
  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  cfg.machine.ft = ft::RuntimeConfig::from_config(cli).liveness;
  armci::World world(cfg);

  const kvs::KvResult r = kvs::run_workload(world, kc);

  std::printf("kv_service: %d clients, %lld keys, theta=%.2f\n",
              r.survivors, static_cast<long long>(kc.keys), kc.zipf_theta);
  std::printf("  acked_ops=%llu (%llu get / %llu put / %llu faa)  %.3f Mops/s\n",
              static_cast<unsigned long long>(r.acked_ops),
              static_cast<unsigned long long>(r.total.gets),
              static_cast<unsigned long long>(r.total.puts),
              static_cast<unsigned long long>(r.total.faas), r.mops);
  std::printf("  get p50/p99 = %.2f/%.2f us   put p50/p99 = %.2f/%.2f us\n",
              static_cast<double>(r.total.get_lat.quantile(0.5)) / 1e3,
              static_cast<double>(r.total.get_lat.quantile(0.99)) / 1e3,
              static_cast<double>(r.total.put_lat.quantile(0.5)) / 1e3,
              static_cast<double>(r.total.put_lat.quantile(0.99)) / 1e3);
  std::printf("  cas_lost=%llu  version_retries=%llu  torn_reads=%llu\n",
              static_cast<unsigned long long>(r.total.cas_lost),
              static_cast<unsigned long long>(r.total.version_retries),
              static_cast<unsigned long long>(r.total.torn_reads));
  if (r.recoveries > 0) {
    std::printf(
        "  fail-stop: recoveries=%d replayed_ops=%llu lost_acked_writes=%llu\n",
        r.recoveries, static_cast<unsigned long long>(r.total.replayed_ops),
        static_cast<unsigned long long>(r.lost_acked));
  }
  return r.lost_acked == 0 && r.torn_reads == 0 ? 0 : 1;
}
