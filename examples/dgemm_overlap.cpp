// Distributed blocked matrix multiply C = A * B on Global Arrays —
// the paper's S III-E motivating workload. Each task fetches blocks of
// A and B with non-blocking gets, multiplies locally, and accumulates
// into C. Because A/B are read-only and C is accumulate-only, the
// per-region consistency tracking lets gets overlap pending
// accumulates with zero forced fences; run with --consistency=target
// to watch the naive tracker serialize them.
//
//   ./examples/dgemm_overlap [--n=192] [--block=32] [--ranks=16]
//                            [--consistency=region|target]
#include <cstdio>
#include <vector>

#include "core/comm.hpp"
#include "ga/global_array.hpp"
#include "fault/fault.hpp"
#include "util/config.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const std::int64_t n = cli.get_int("n", 192);
  const std::int64_t blk = cli.get_int("block", 32);
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 16));
  cfg.armci.consistency = cli.get_string("consistency", "region") == "target"
                              ? armci::ConsistencyMode::kPerTarget
                              : armci::ConsistencyMode::kPerRegion;

  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  armci::World world(cfg);
  double checksum = 0.0;
  Time wall = 0;
  std::uint64_t forced = 0;
  world.spmd([&](armci::Comm& comm) {
    ga::GlobalArray a(comm, n, n);
    ga::GlobalArray b(comm, n, n);
    ga::GlobalArray c(comm, n, n);
    // A[i][j] = i + j; B = I (so C must equal A, easy to validate).
    a.fill_local([](std::int64_t i, std::int64_t j) {
      return static_cast<double>(i + j);
    });
    b.fill_local([](std::int64_t i, std::int64_t j) { return i == j ? 1.0 : 0.0; });
    c.fill_local(0.0);
    comm.barrier();
    const Time t0 = comm.now();

    const std::int64_t nb = n / blk;
    std::vector<double> abuf(static_cast<std::size_t>(blk * blk));
    std::vector<double> bbuf(abuf.size());
    std::vector<double> cbuf(abuf.size());
    std::int64_t task = 0;
    for (std::int64_t bi = 0; bi < nb; ++bi) {
      for (std::int64_t bj = 0; bj < nb; ++bj) {
        for (std::int64_t bk = 0; bk < nb; ++bk, ++task) {
          if (task % comm.nprocs() != comm.rank()) continue;
          // Overlap: both input blocks fetched under one handle while
          // earlier accumulates to C are still in flight.
          armci::Handle h;
          a.nb_get(bi * blk, (bi + 1) * blk, bk * blk, (bk + 1) * blk, abuf.data(),
                   blk, h);
          b.nb_get(bk * blk, (bk + 1) * blk, bj * blk, (bj + 1) * blk, bbuf.data(),
                   blk, h);
          comm.wait(h);
          // Local block multiply (real math, plus modelled FLOP time).
          for (std::int64_t i = 0; i < blk; ++i) {
            for (std::int64_t j = 0; j < blk; ++j) {
              double s = 0.0;
              for (std::int64_t k = 0; k < blk; ++k) {
                s += abuf[static_cast<std::size_t>(i * blk + k)] *
                     bbuf[static_cast<std::size_t>(k * blk + j)];
              }
              cbuf[static_cast<std::size_t>(i * blk + j)] = s;
            }
          }
          comm.compute(from_ns(2.0 * blk * blk * blk));  // ~0.5 GF/s core
          c.acc(1.0, bi * blk, (bi + 1) * blk, bj * blk, (bj + 1) * blk, cbuf.data(),
                blk);
        }
      }
    }
    comm.barrier();
    if (comm.rank() == 0) {
      wall = comm.now() - t0;
      forced = comm.stats().forced_fences;
      // Validate a few entries: C == A because B is the identity.
      checksum = c.read_element(5, 9) + c.read_element(n - 1, 3);
    }
    comm.barrier();
    forced += comm.rank() == 0 ? 0 : comm.stats().forced_fences;
  });

  std::printf("dgemm %lldx%lld, block %lld, %d ranks, %s tracking\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(blk), cfg.machine.num_ranks,
              cfg.armci.consistency == armci::ConsistencyMode::kPerRegion
                  ? "per-region"
                  : "per-target");
  std::printf("  wall (virtual): %.2f ms, forced fences: %llu\n", to_ms(wall),
              static_cast<unsigned long long>(forced));
  std::printf("  validation: C[5][9]+C[n-1][3] = %.1f (expected %.1f)\n", checksum,
              5.0 + 9.0 + (n - 1.0) + 3.0);
  return checksum == 5.0 + 9.0 + (n - 1.0) + 3.0 ? 0 : 1;
}
