// Strided halo exchange for a 2-D stencil — the patch-based transfer
// pattern (S III-C2) that subsurface-modeling codes like STOMP run on
// Global Arrays. Each rank owns a tile of a global grid and pulls a
// one-cell halo from its four neighbours with strided gets: row halos
// are contiguous, column halos are tall-skinny (one element per row),
// which is exactly the shape the PAMI-typed path exists for.
//
//   ./examples/halo_exchange [--ranks=16] [--tile=64] [--steps=4]
#include <cstdio>
#include <vector>

#include "core/comm.hpp"
#include "core/strided.hpp"
#include "fault/fault.hpp"
#include "util/config.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 16));
  const std::int64_t tile = cli.get_int("tile", 64);
  const int steps = static_cast<int>(cli.get_int("steps", 4));

  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  armci::World world(cfg);
  Time wall = 0;
  double sample = 0.0;
  world.spmd([&](armci::Comm& comm) {
    const int p = comm.nprocs();
    // Square-ish process grid.
    int pr = 1;
    while ((pr + 1) * (pr + 1) <= p && p % (pr + 1) == 0) ++pr;
    const int pc = p / pr;
    const int gr = comm.rank() / pc;
    const int gc = comm.rank() % pc;
    const std::size_t row_bytes = static_cast<std::size_t>(tile) * sizeof(double);

    // Tile storage lives in collective memory so neighbours can reach it.
    armci::GlobalMem& mem =
        comm.malloc_collective(static_cast<std::size_t>(tile) * row_bytes);
    auto* grid = reinterpret_cast<double*>(mem.local(comm.rank()));
    for (std::int64_t i = 0; i < tile * tile; ++i) {
      grid[i] = comm.rank() * 10000.0 + static_cast<double>(i);
    }
    comm.barrier();
    const Time t0 = comm.now();

    std::vector<double> north(static_cast<std::size_t>(tile));
    std::vector<double> south(north.size());
    std::vector<double> west(north.size());
    std::vector<double> east(north.size());
    auto neighbour = [&](int dr, int dc) {
      const int nr = (gr + dr + pr) % pr;
      const int nc = (gc + dc + pc) % pc;
      return nr * pc + nc;
    };

    for (int step = 0; step < steps; ++step) {
      armci::Handle h;
      // North halo: the neighbour's LAST row — one contiguous chunk.
      comm.nb_get_strided(
          mem.at(neighbour(-1, 0), (static_cast<std::size_t>(tile) - 1) * row_bytes),
          north.data(), armci::StridedSpec::contiguous(row_bytes), h);
      // South halo: the neighbour's first row.
      comm.nb_get_strided(mem.at(neighbour(+1, 0)), south.data(),
                          armci::StridedSpec::contiguous(row_bytes), h);
      // West halo: the neighbour's last COLUMN — tall-skinny: tile
      // chunks of 8 bytes with the row pitch as stride.
      comm.nb_get_strided(
          mem.at(neighbour(0, -1), row_bytes - sizeof(double)), west.data(),
          armci::StridedSpec(
              {sizeof(double), static_cast<std::uint64_t>(tile)},
              {row_bytes}, {sizeof(double)}),
          h);
      // East halo: the neighbour's first column.
      comm.nb_get_strided(
          mem.at(neighbour(0, +1)), east.data(),
          armci::StridedSpec(
              {sizeof(double), static_cast<std::uint64_t>(tile)},
              {row_bytes}, {sizeof(double)}),
          h);
      comm.wait(h);
      // Relax the tile interior (modelled compute + a real touch).
      comm.compute(from_ns(5.0 * static_cast<double>(tile) * tile));
      grid[0] = 0.25 * (north[0] + south[0] + west[0] + east[0]);
      comm.barrier();
    }
    if (comm.rank() == 0) {
      wall = comm.now() - t0;
      // Validate one tall-skinny halo element: east neighbour's column 0,
      // row 3 = rank*10000 + 3*tile.
      sample = east[3] - (neighbour(0, +1) * 10000.0 + 3.0 * tile);
    }
    comm.barrier();
  });

  std::printf("halo exchange: %d ranks, %lldx%lld tiles, %d steps\n",
              cfg.machine.num_ranks, static_cast<long long>(tile),
              static_cast<long long>(tile), steps);
  std::printf("  wall (virtual): %.2f ms; tall-skinny column halo validated: %s\n",
              to_ms(wall), sample == 0.0 ? "OK" : "MISMATCH");
  return sample == 0.0 ? 0 : 1;
}
