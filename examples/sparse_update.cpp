// Irregular sparse updates over Global Arrays — the gather/scatter
// access pattern (GA_Gather / GA_ScatterAcc) that motivates ARMCI's
// general I/O-vector datatype (S II-B): each rank repeatedly reads and
// accumulates a random set of matrix elements scattered across all
// owners, batched into one vector operation per target. Finishes by
// printing the runtime's communication report.
//
//   ./examples/sparse_update [--ranks=16] [--n=128] [--updates=200]
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "ga/collectives.hpp"
#include "ga/global_array.hpp"
#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

using namespace pgasq;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = static_cast<int>(cli.get_int("ranks", 16));
  const std::int64_t n = cli.get_int("n", 128);
  const int updates = static_cast<int>(cli.get_int("updates", 200));
  const int batch = static_cast<int>(cli.get_int("batch", 24));

  cfg.machine.fault = fault::FaultPlan::from_config(cli);
  // --flow.* arms overload control (credit backpressure, deadlines);
  // the report then grows an "overload control (flow)" table
  // (docs/overload.md).
  cfg.machine.flow = flow::FlowConfig::from_config(cli);
  // --coll.* keys reach the collectives engine with the prefix
  // stripped, e.g. --coll.algo.allreduce=torus-ring (docs/collectives.md).
  for (const std::string& key : cli.keys()) {
    if (key.rfind("coll.", 0) == 0) {
      cfg.armci.coll.emplace_back(key.substr(5), cli.get_string(key, ""));
    }
  }
  armci::World world(cfg);
  double total = 0.0;
  double expected = 0.0;
  world.spmd([&](armci::Comm& comm) {
    ga::GlobalArray a(comm, n, n);
    a.fill_local(0.0);
    a.sync();
    Rng rng(0xfeed + static_cast<std::uint64_t>(comm.rank()));
    double local_added = 0.0;
    std::vector<ga::GlobalArray::ElementIndex> idx(static_cast<std::size_t>(batch));
    std::vector<double> gathered(idx.size());
    std::vector<double> delta(idx.size());
    for (int u = 0; u < updates; ++u) {
      // A random scatter of elements; duplicates within one batch are
      // avoided by striding the row with the slot number.
      for (int k = 0; k < batch; ++k) {
        idx[static_cast<std::size_t>(k)] = {
            (rng.next_in(0, n - 1) + k) % n,
            rng.next_in(0, n - 1)};
      }
      // Read-modify-accumulate: gather current values, compute an
      // update, scatter-accumulate it back.
      a.gather(idx, gathered.data());
      for (int k = 0; k < batch; ++k) {
        delta[static_cast<std::size_t>(k)] = 1.0;
        local_added += 1.0;
      }
      comm.compute(from_us(20));  // the "apply physics" step
      a.scatter_acc(1.0, idx, delta.data());
    }
    a.sync();
    ga::gop_sum(comm, &local_added, 1);
    if (comm.rank() == 0) {
      expected = local_added;
      total = ga::element_sum(a);
    } else {
      ga::element_sum(a);  // collective
    }
    comm.barrier();
  });

  std::printf("sparse updates: %d ranks, %lldx%lld array, %d batches of %d\n",
              cfg.machine.num_ranks, static_cast<long long>(n),
              static_cast<long long>(n), updates, batch);
  std::printf("  mass conservation: scattered %.0f, array holds %.0f — %s\n\n",
              expected, total, expected == total ? "OK" : "MISMATCH");
  armci::print_report(world);
  return expected == total ? 0 : 1;
}
