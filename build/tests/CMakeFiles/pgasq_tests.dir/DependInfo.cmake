
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_apps_stencil.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_apps_stencil.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_apps_stencil.cpp.o.d"
  "/root/repo/tests/test_armci_acc_types.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_acc_types.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_acc_types.cpp.o.d"
  "/root/repo/tests/test_armci_consistency.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_consistency.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_consistency.cpp.o.d"
  "/root/repo/tests/test_armci_contig.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_contig.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_contig.cpp.o.d"
  "/root/repo/tests/test_armci_notify.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_notify.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_notify.cpp.o.d"
  "/root/repo/tests/test_armci_rmw_mutex.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_rmw_mutex.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_rmw_mutex.cpp.o.d"
  "/root/repo/tests/test_armci_strided.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_strided.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_strided.cpp.o.d"
  "/root/repo/tests/test_armci_vector.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_armci_vector.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_armci_vector.cpp.o.d"
  "/root/repo/tests/test_caches.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_caches.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_caches.cpp.o.d"
  "/root/repo/tests/test_ga.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_ga.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_ga.cpp.o.d"
  "/root/repo/tests/test_ga_collectives.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_ga_collectives.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_ga_collectives.cpp.o.d"
  "/root/repo/tests/test_ga_dgemm.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_ga_dgemm.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_ga_dgemm.cpp.o.d"
  "/root/repo/tests/test_ga_gather_scatter.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_ga_gather_scatter.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_ga_gather_scatter.cpp.o.d"
  "/root/repo/tests/test_ga_matrix_ops.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_ga_matrix_ops.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_ga_matrix_ops.cpp.o.d"
  "/root/repo/tests/test_misc_paths.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_misc_paths.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_misc_paths.cpp.o.d"
  "/root/repo/tests/test_noc.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_noc.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_noc.cpp.o.d"
  "/root/repo/tests/test_pami.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_pami.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_pami.cpp.o.d"
  "/root/repo/tests/test_pami_typed.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_pami_typed.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_pami_typed.cpp.o.d"
  "/root/repo/tests/test_property_shadow.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_property_shadow.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_property_shadow.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_scale_smoke.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_scale_smoke.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_scale_smoke.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_sim_sync.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_sim_sync.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_sim_sync.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_strided_multilevel.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_strided_multilevel.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_strided_multilevel.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/pgasq_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/pgasq_tests.dir/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/pgasq_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/pgasq_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pgasq_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/pami/CMakeFiles/pgasq_pami.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/pgasq_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pgasq_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
