# Empty compiler generated dependencies file for pgasq_tests.
# This may be replaced when dependencies are built.
