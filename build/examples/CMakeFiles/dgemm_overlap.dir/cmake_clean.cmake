file(REMOVE_RECURSE
  "CMakeFiles/dgemm_overlap.dir/dgemm_overlap.cpp.o"
  "CMakeFiles/dgemm_overlap.dir/dgemm_overlap.cpp.o.d"
  "dgemm_overlap"
  "dgemm_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgemm_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
