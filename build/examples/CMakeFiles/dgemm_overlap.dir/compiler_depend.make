# Empty compiler generated dependencies file for dgemm_overlap.
# This may be replaced when dependencies are built.
