# Empty dependencies file for scf_walkthrough.
# This may be replaced when dependencies are built.
