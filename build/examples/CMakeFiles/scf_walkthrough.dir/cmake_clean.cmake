file(REMOVE_RECURSE
  "CMakeFiles/scf_walkthrough.dir/scf_walkthrough.cpp.o"
  "CMakeFiles/scf_walkthrough.dir/scf_walkthrough.cpp.o.d"
  "scf_walkthrough"
  "scf_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scf_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
