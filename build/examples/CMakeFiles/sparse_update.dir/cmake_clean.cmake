file(REMOVE_RECURSE
  "CMakeFiles/sparse_update.dir/sparse_update.cpp.o"
  "CMakeFiles/sparse_update.dir/sparse_update.cpp.o.d"
  "sparse_update"
  "sparse_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
