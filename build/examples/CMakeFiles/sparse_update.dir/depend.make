# Empty dependencies file for sparse_update.
# This may be replaced when dependencies are built.
