# CMake generated Testfile for 
# Source directory: /root/repo/src/pami
# Build directory: /root/repo/build/src/pami
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
