# Empty dependencies file for pgasq_pami.
# This may be replaced when dependencies are built.
