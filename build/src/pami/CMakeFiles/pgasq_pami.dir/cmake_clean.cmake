file(REMOVE_RECURSE
  "CMakeFiles/pgasq_pami.dir/context.cpp.o"
  "CMakeFiles/pgasq_pami.dir/context.cpp.o.d"
  "CMakeFiles/pgasq_pami.dir/machine.cpp.o"
  "CMakeFiles/pgasq_pami.dir/machine.cpp.o.d"
  "CMakeFiles/pgasq_pami.dir/memregion.cpp.o"
  "CMakeFiles/pgasq_pami.dir/memregion.cpp.o.d"
  "CMakeFiles/pgasq_pami.dir/process.cpp.o"
  "CMakeFiles/pgasq_pami.dir/process.cpp.o.d"
  "libpgasq_pami.a"
  "libpgasq_pami.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_pami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
