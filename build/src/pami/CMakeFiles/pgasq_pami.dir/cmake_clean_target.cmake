file(REMOVE_RECURSE
  "libpgasq_pami.a"
)
