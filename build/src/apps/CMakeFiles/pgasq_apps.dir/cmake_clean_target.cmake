file(REMOVE_RECURSE
  "libpgasq_apps.a"
)
