file(REMOVE_RECURSE
  "CMakeFiles/pgasq_apps.dir/counter_kernel.cpp.o"
  "CMakeFiles/pgasq_apps.dir/counter_kernel.cpp.o.d"
  "CMakeFiles/pgasq_apps.dir/scf.cpp.o"
  "CMakeFiles/pgasq_apps.dir/scf.cpp.o.d"
  "CMakeFiles/pgasq_apps.dir/stencil.cpp.o"
  "CMakeFiles/pgasq_apps.dir/stencil.cpp.o.d"
  "libpgasq_apps.a"
  "libpgasq_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
