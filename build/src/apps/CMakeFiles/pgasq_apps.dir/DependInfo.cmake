
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/counter_kernel.cpp" "src/apps/CMakeFiles/pgasq_apps.dir/counter_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/pgasq_apps.dir/counter_kernel.cpp.o.d"
  "/root/repo/src/apps/scf.cpp" "src/apps/CMakeFiles/pgasq_apps.dir/scf.cpp.o" "gcc" "src/apps/CMakeFiles/pgasq_apps.dir/scf.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/apps/CMakeFiles/pgasq_apps.dir/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/pgasq_apps.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ga/CMakeFiles/pgasq_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pgasq_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/pami/CMakeFiles/pgasq_pami.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/pgasq_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pgasq_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
