# Empty dependencies file for pgasq_apps.
# This may be replaced when dependencies are built.
