file(REMOVE_RECURSE
  "CMakeFiles/pgasq_util.dir/config.cpp.o"
  "CMakeFiles/pgasq_util.dir/config.cpp.o.d"
  "CMakeFiles/pgasq_util.dir/log.cpp.o"
  "CMakeFiles/pgasq_util.dir/log.cpp.o.d"
  "CMakeFiles/pgasq_util.dir/stats.cpp.o"
  "CMakeFiles/pgasq_util.dir/stats.cpp.o.d"
  "CMakeFiles/pgasq_util.dir/table.cpp.o"
  "CMakeFiles/pgasq_util.dir/table.cpp.o.d"
  "libpgasq_util.a"
  "libpgasq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
