file(REMOVE_RECURSE
  "libpgasq_util.a"
)
