# Empty compiler generated dependencies file for pgasq_util.
# This may be replaced when dependencies are built.
