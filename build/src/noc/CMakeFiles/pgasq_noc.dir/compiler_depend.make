# Empty compiler generated dependencies file for pgasq_noc.
# This may be replaced when dependencies are built.
