file(REMOVE_RECURSE
  "libpgasq_noc.a"
)
