file(REMOVE_RECURSE
  "CMakeFiles/pgasq_noc.dir/network.cpp.o"
  "CMakeFiles/pgasq_noc.dir/network.cpp.o.d"
  "libpgasq_noc.a"
  "libpgasq_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
