# Empty dependencies file for pgasq_topo.
# This may be replaced when dependencies are built.
