file(REMOVE_RECURSE
  "libpgasq_topo.a"
)
