file(REMOVE_RECURSE
  "CMakeFiles/pgasq_topo.dir/torus.cpp.o"
  "CMakeFiles/pgasq_topo.dir/torus.cpp.o.d"
  "libpgasq_topo.a"
  "libpgasq_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
