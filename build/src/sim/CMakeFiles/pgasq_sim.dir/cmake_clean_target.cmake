file(REMOVE_RECURSE
  "libpgasq_sim.a"
)
