file(REMOVE_RECURSE
  "CMakeFiles/pgasq_sim.dir/engine.cpp.o"
  "CMakeFiles/pgasq_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pgasq_sim.dir/fiber.cpp.o"
  "CMakeFiles/pgasq_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/pgasq_sim.dir/sync.cpp.o"
  "CMakeFiles/pgasq_sim.dir/sync.cpp.o.d"
  "CMakeFiles/pgasq_sim.dir/trace.cpp.o"
  "CMakeFiles/pgasq_sim.dir/trace.cpp.o.d"
  "libpgasq_sim.a"
  "libpgasq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
