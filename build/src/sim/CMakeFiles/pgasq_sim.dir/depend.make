# Empty dependencies file for pgasq_sim.
# This may be replaced when dependencies are built.
