file(REMOVE_RECURSE
  "CMakeFiles/pgasq_armci.dir/caches.cpp.o"
  "CMakeFiles/pgasq_armci.dir/caches.cpp.o.d"
  "CMakeFiles/pgasq_armci.dir/comm.cpp.o"
  "CMakeFiles/pgasq_armci.dir/comm.cpp.o.d"
  "CMakeFiles/pgasq_armci.dir/consistency.cpp.o"
  "CMakeFiles/pgasq_armci.dir/consistency.cpp.o.d"
  "CMakeFiles/pgasq_armci.dir/globalmem.cpp.o"
  "CMakeFiles/pgasq_armci.dir/globalmem.cpp.o.d"
  "CMakeFiles/pgasq_armci.dir/report.cpp.o"
  "CMakeFiles/pgasq_armci.dir/report.cpp.o.d"
  "CMakeFiles/pgasq_armci.dir/strided.cpp.o"
  "CMakeFiles/pgasq_armci.dir/strided.cpp.o.d"
  "CMakeFiles/pgasq_armci.dir/world.cpp.o"
  "CMakeFiles/pgasq_armci.dir/world.cpp.o.d"
  "libpgasq_armci.a"
  "libpgasq_armci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_armci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
