file(REMOVE_RECURSE
  "libpgasq_armci.a"
)
