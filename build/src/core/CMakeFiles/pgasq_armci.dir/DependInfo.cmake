
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/caches.cpp" "src/core/CMakeFiles/pgasq_armci.dir/caches.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/caches.cpp.o.d"
  "/root/repo/src/core/comm.cpp" "src/core/CMakeFiles/pgasq_armci.dir/comm.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/comm.cpp.o.d"
  "/root/repo/src/core/consistency.cpp" "src/core/CMakeFiles/pgasq_armci.dir/consistency.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/consistency.cpp.o.d"
  "/root/repo/src/core/globalmem.cpp" "src/core/CMakeFiles/pgasq_armci.dir/globalmem.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/globalmem.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/pgasq_armci.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/report.cpp.o.d"
  "/root/repo/src/core/strided.cpp" "src/core/CMakeFiles/pgasq_armci.dir/strided.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/strided.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/core/CMakeFiles/pgasq_armci.dir/world.cpp.o" "gcc" "src/core/CMakeFiles/pgasq_armci.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pami/CMakeFiles/pgasq_pami.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgasq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/pgasq_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pgasq_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgasq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
