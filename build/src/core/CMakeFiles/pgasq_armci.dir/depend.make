# Empty dependencies file for pgasq_armci.
# This may be replaced when dependencies are built.
