# Empty dependencies file for pgasq_ga.
# This may be replaced when dependencies are built.
