file(REMOVE_RECURSE
  "CMakeFiles/pgasq_ga.dir/collectives.cpp.o"
  "CMakeFiles/pgasq_ga.dir/collectives.cpp.o.d"
  "CMakeFiles/pgasq_ga.dir/dgemm.cpp.o"
  "CMakeFiles/pgasq_ga.dir/dgemm.cpp.o.d"
  "CMakeFiles/pgasq_ga.dir/global_array.cpp.o"
  "CMakeFiles/pgasq_ga.dir/global_array.cpp.o.d"
  "CMakeFiles/pgasq_ga.dir/matrix_ops.cpp.o"
  "CMakeFiles/pgasq_ga.dir/matrix_ops.cpp.o.d"
  "libpgasq_ga.a"
  "libpgasq_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgasq_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
