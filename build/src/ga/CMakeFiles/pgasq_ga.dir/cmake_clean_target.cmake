file(REMOVE_RECURSE
  "libpgasq_ga.a"
)
