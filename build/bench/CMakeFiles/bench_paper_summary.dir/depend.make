# Empty dependencies file for bench_paper_summary.
# This may be replaced when dependencies are built.
