file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_summary.dir/bench_paper_summary.cpp.o"
  "CMakeFiles/bench_paper_summary.dir/bench_paper_summary.cpp.o.d"
  "bench_paper_summary"
  "bench_paper_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
