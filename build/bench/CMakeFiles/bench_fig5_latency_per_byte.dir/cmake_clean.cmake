file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_latency_per_byte.dir/bench_fig5_latency_per_byte.cpp.o"
  "CMakeFiles/bench_fig5_latency_per_byte.dir/bench_fig5_latency_per_byte.cpp.o.d"
  "bench_fig5_latency_per_byte"
  "bench_fig5_latency_per_byte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_latency_per_byte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
