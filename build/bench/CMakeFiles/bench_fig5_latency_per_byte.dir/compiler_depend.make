# Empty compiler generated dependencies file for bench_fig5_latency_per_byte.
# This may be replaced when dependencies are built.
