# Empty dependencies file for bench_table2_attributes.
# This may be replaced when dependencies are built.
