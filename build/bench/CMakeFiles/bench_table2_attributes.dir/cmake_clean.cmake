file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_attributes.dir/bench_table2_attributes.cpp.o"
  "CMakeFiles/bench_table2_attributes.dir/bench_table2_attributes.cpp.o.d"
  "bench_table2_attributes"
  "bench_table2_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
