file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_strided_protocol.dir/bench_abl_strided_protocol.cpp.o"
  "CMakeFiles/bench_abl_strided_protocol.dir/bench_abl_strided_protocol.cpp.o.d"
  "bench_abl_strided_protocol"
  "bench_abl_strided_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_strided_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
