# Empty dependencies file for bench_abl_strided_protocol.
# This may be replaced when dependencies are built.
