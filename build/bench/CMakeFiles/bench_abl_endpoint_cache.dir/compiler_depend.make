# Empty compiler generated dependencies file for bench_abl_endpoint_cache.
# This may be replaced when dependencies are built.
