# Empty dependencies file for bench_simcore_gbench.
# This may be replaced when dependencies are built.
