file(REMOVE_RECURSE
  "CMakeFiles/bench_simcore_gbench.dir/bench_simcore_gbench.cpp.o"
  "CMakeFiles/bench_simcore_gbench.dir/bench_simcore_gbench.cpp.o.d"
  "bench_simcore_gbench"
  "bench_simcore_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simcore_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
