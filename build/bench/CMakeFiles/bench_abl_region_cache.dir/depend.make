# Empty dependencies file for bench_abl_region_cache.
# This may be replaced when dependencies are built.
