file(REMOVE_RECURSE
  "CMakeFiles/bench_supp_ppn.dir/bench_supp_ppn.cpp.o"
  "CMakeFiles/bench_supp_ppn.dir/bench_supp_ppn.cpp.o.d"
  "bench_supp_ppn"
  "bench_supp_ppn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp_ppn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
