# Empty dependencies file for bench_supp_ppn.
# This may be replaced when dependencies are built.
