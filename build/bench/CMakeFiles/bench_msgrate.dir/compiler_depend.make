# Empty compiler generated dependencies file for bench_msgrate.
# This may be replaced when dependencies are built.
