# Empty dependencies file for bench_abl_contexts.
# This may be replaced when dependencies are built.
