file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_contexts.dir/bench_abl_contexts.cpp.o"
  "CMakeFiles/bench_abl_contexts.dir/bench_abl_contexts.cpp.o.d"
  "bench_abl_contexts"
  "bench_abl_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
