# Empty dependencies file for bench_abl_netmodel.
# This may be replaced when dependencies are built.
