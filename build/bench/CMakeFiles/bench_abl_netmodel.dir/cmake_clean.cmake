file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_netmodel.dir/bench_abl_netmodel.cpp.o"
  "CMakeFiles/bench_abl_netmodel.dir/bench_abl_netmodel.cpp.o.d"
  "bench_abl_netmodel"
  "bench_abl_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
