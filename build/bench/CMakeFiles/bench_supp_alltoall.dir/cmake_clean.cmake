file(REMOVE_RECURSE
  "CMakeFiles/bench_supp_alltoall.dir/bench_supp_alltoall.cpp.o"
  "CMakeFiles/bench_supp_alltoall.dir/bench_supp_alltoall.cpp.o.d"
  "bench_supp_alltoall"
  "bench_supp_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
