# Empty dependencies file for bench_supp_alltoall.
# This may be replaced when dependencies are built.
