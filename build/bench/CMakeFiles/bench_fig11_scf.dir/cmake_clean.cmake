file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scf.dir/bench_fig11_scf.cpp.o"
  "CMakeFiles/bench_fig11_scf.dir/bench_fig11_scf.cpp.o.d"
  "bench_fig11_scf"
  "bench_fig11_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
