# Empty compiler generated dependencies file for bench_abl_hw_amo.
# This may be replaced when dependencies are built.
