file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hw_amo.dir/bench_abl_hw_amo.cpp.o"
  "CMakeFiles/bench_abl_hw_amo.dir/bench_abl_hw_amo.cpp.o.d"
  "bench_abl_hw_amo"
  "bench_abl_hw_amo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hw_amo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
