file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_strided.dir/bench_fig8_strided.cpp.o"
  "CMakeFiles/bench_fig8_strided.dir/bench_fig8_strided.cpp.o.d"
  "bench_fig8_strided"
  "bench_fig8_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
