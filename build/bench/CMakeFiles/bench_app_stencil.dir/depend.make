# Empty dependencies file for bench_app_stencil.
# This may be replaced when dependencies are built.
