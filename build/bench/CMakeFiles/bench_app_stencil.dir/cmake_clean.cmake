file(REMOVE_RECURSE
  "CMakeFiles/bench_app_stencil.dir/bench_app_stencil.cpp.o"
  "CMakeFiles/bench_app_stencil.dir/bench_app_stencil.cpp.o.d"
  "bench_app_stencil"
  "bench_app_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
