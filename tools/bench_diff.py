#!/usr/bin/env python3
"""Diff two pgasq.report JSON files (the BENCH_*.json the benches emit).

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json [--fail-over PCT]
                           [--metric PREFIX] [--all]

Compares elapsed_us and every numeric metric (counters and gauges;
histograms compare their totals) keyed by name + labels, and prints a
table of baseline, candidate, and relative delta. Metrics present on
only one side are listed as added/removed; a whole metric NAMESPACE
(the part before the first '.') or report section (links, timeline,
critpath, trace) present on one side only is summarized as one named
"added"/"removed" line instead of a per-key flood, so reports from
older builds (predating a subsystem) remain diffable. Metric entries
without a name are skipped with a note, never a crash. By default only
changed metrics are printed; --all prints every row.

--fail-over PCT turns the diff into a gate: exit 1 when any compared
metric (optionally filtered to names starting with --metric PREFIX)
moved by more than PCT percent, or when either file is not a
schema-valid pgasq.report. Zero-baseline metrics fail only when the
candidate is nonzero. Exit 0 otherwise — so CI can assert "this PR
moved no bench metric by more than N%".
"""

import argparse
import json
import sys

KNOWN_SCHEMA_VERSIONS = {1}


def fail(msg):
    print(f"bench_diff: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    if doc.get("schema") != "pgasq.report":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'pgasq.report'")
    if doc.get("schema_version") not in KNOWN_SCHEMA_VERSIONS:
        fail(f"{path}: unknown schema_version {doc.get('schema_version')!r}")
    return doc


def metric_key(m):
    labels = m.get("labels") or {}
    tail = "".join(f"{{{k}={labels[k]}}}" for k in sorted(labels))
    return m["name"] + tail


def metric_value(m):
    if m.get("type") == "histogram":
        return m.get("total", 0)
    return m.get("value", 0)


def namespace(key):
    """'kvs.gets{arm=on}' -> 'kvs'; un-dotted keys are their own group."""
    return key.split("{", 1)[0].split(".", 1)[0]


# Optional top-level report sections: present only when the producing
# run enabled the corresponding subsystem (obs.links, obs.timeline, ...).
SECTIONS = ("links", "timeline", "critpath", "trace")


def flatten(doc, path):
    vals = {"elapsed_us": doc.get("elapsed_us", 0)}
    for i, m in enumerate(doc.get("metrics", [])):
        if not isinstance(m, dict) or "name" not in m:
            print(f"bench_diff: note — {path} metric {i} has no name, "
                  f"skipped: {m!r}", file=sys.stderr)
            continue
        vals[metric_key(m)] = metric_value(m)
    return vals


def rel_delta(base, cand):
    """Relative change in percent; None when both are zero."""
    if base == cand:
        return 0.0
    if base == 0:
        return None  # infinite relative change: nonzero from zero
    return 100.0 * (cand - base) / base


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline pgasq.report JSON")
    ap.add_argument("candidate", help="candidate pgasq.report JSON")
    ap.add_argument("--fail-over", type=float, metavar="PCT", default=None,
                    help="exit 1 when any metric moved by more than PCT%%")
    ap.add_argument("--metric", default="", metavar="PREFIX",
                    help="restrict the --fail-over gate to metric names "
                         "starting with PREFIX (the table still shows all)")
    ap.add_argument("--all", action="store_true",
                    help="print unchanged metrics too")
    args = ap.parse_args()

    base_doc = load_report(args.baseline)
    cand_doc = load_report(args.candidate)
    base = flatten(base_doc, args.baseline)
    cand = flatten(cand_doc, args.candidate)

    added = sorted(set(cand) - set(base))
    removed = sorted(set(base) - set(cand))
    shared = sorted(set(base) & set(cand))

    rows = []
    offenders = []
    for key in shared:
        b, c = base[key], cand[key]
        d = rel_delta(b, c)
        if d == 0.0 and not args.all:
            continue
        shown = "n/a (zero baseline)" if d is None else f"{d:+.2f}%"
        rows.append((key, b, c, shown))
        if args.fail_over is not None and key.startswith(args.metric):
            over = (d is None and c != 0) or (d is not None
                                             and abs(d) > args.fail_over)
            if over:
                offenders.append((key, b, c, shown))

    if rows:
        w = max(len(k) for k, _, _, _ in rows)
        print(f"{'metric':<{w}}  {'baseline':>16}  {'candidate':>16}  delta")
        for key, b, c, shown in rows:
            print(f"{key:<{w}}  {b:>16g}  {c:>16g}  {shown}")
    else:
        print("bench_diff: no metric changed")
    def print_one_sided(keys, vals, other, side):
        """One summary line per namespace fully absent on `other`;
        individual lines for keys whose namespace exists on both."""
        other_ns = {namespace(k) for k in other}
        by_ns = {}
        for k in keys:
            by_ns.setdefault(namespace(k), []).append(k)
        for ns in sorted(by_ns):
            if ns not in other_ns:
                print(f"bench_diff: {side}: namespace '{ns}' "
                      f"({len(by_ns[ns])} metrics)")
            else:
                for k in by_ns[ns]:
                    print(f"bench_diff: {side}: {k} = {vals[k]:g}")

    print_one_sided(added, cand, base, "only in candidate")
    print_one_sided(removed, base, cand, "only in baseline")
    for section in SECTIONS:
        in_base, in_cand = section in base_doc, section in cand_doc
        if in_cand and not in_base:
            print(f"bench_diff: only in candidate: report section "
                  f"'{section}'")
        elif in_base and not in_cand:
            print(f"bench_diff: only in baseline: report section "
                  f"'{section}'")

    if args.fail_over is not None:
        scope = f" (prefix {args.metric!r})" if args.metric else ""
        if offenders:
            for key, b, c, shown in offenders:
                print(f"bench_diff: FAIL: {key} moved {shown} "
                      f"({b:g} -> {c:g}), over the {args.fail_over}% gate"
                      f"{scope}", file=sys.stderr)
            sys.exit(1)
        print(f"bench_diff: gate OK — no metric{scope} moved more than "
              f"{args.fail_over}%")


if __name__ == "__main__":
    main()
