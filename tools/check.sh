#!/usr/bin/env bash
# Gate script: the tree must build and pass ctest twice — a plain
# RelWithDebInfo build, then an UndefinedBehaviorSanitizer build
# (PGASQ_SANITIZE=undefined). Run from anywhere; builds live in
# build-check/ and build-check-ubsan/ at the repo root.
#
# Usage: tools/check.sh [--asan]
#   --asan  additionally run an AddressSanitizer pass (slower; fiber
#           switches are ASan-annotated via sim/fiber.hpp).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_asan=0
[[ "${1:-}" == "--asan" ]] && run_asan=1

pass() {
  local dir="$1"; shift
  echo "=== configure+build+test: ${dir} ($*)" >&2
  cmake -B "${repo}/${dir}" -S "${repo}" "$@" >/dev/null
  cmake --build "${repo}/${dir}" -j "${jobs}"
  ctest --test-dir "${repo}/${dir}" --output-on-failure -j "${jobs}"
}

pass build-check
pass build-check-ubsan -DPGASQ_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
if [[ "${run_asan}" == 1 ]]; then
  # Validation tests abort mid-run by throwing out of an SPMD body;
  # abandoned fibers' heap is unreachable by design (see lsan.supp).
  export LSAN_OPTIONS="suppressions=${repo}/tools/lsan.supp:print_suppressions=0"
  pass build-check-asan -DPGASQ_SANITIZE=address
fi

echo "=== all checks passed" >&2
