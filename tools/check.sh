#!/usr/bin/env bash
# Gate script: the tree must build and pass ctest twice — a plain
# RelWithDebInfo build, then an UndefinedBehaviorSanitizer build
# (PGASQ_SANITIZE=undefined). Run from anywhere; builds live in
# build-check/ and build-check-ubsan/ at the repo root.
#
# Usage: tools/check.sh [--asan]
#   --asan  additionally run an AddressSanitizer pass (slower; fiber
#           switches are ASan-annotated via sim/fiber.hpp).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_asan=0
[[ "${1:-}" == "--asan" ]] && run_asan=1

pass() {
  local dir="$1"; shift
  echo "=== configure+build+test: ${dir} ($*)" >&2
  cmake -B "${repo}/${dir}" -S "${repo}" "$@" >/dev/null
  cmake --build "${repo}/${dir}" -j "${jobs}"
  ctest --test-dir "${repo}/${dir}" --output-on-failure -j "${jobs}"
}

obs_gate() {
  # Observability gate: a traced SCF run must produce a trace whose
  # flows pair up (with cross-track put/get/coll-hop/ack arrows) and a
  # schema-valid machine-readable report, and two benches must emit
  # BENCH_*.json. Artifacts land in the build dir.
  local dir="$1" out="${repo}/$1/obs-gate"
  echo "=== observability gate: ${dir}" >&2
  mkdir -p "${out}"
  # --distributed_guess routes the initial density through ga_put
  # (put/ack flows); pinning a software allreduce gives the energy
  # reduction per-hop messages (the hw model has none to trace).
  "${repo}/${dir}/examples/scf_walkthrough" --ranks=8 --nbf=24 --block=8 \
    --task_us=50 --distributed_guess=1 --coll.algo.allreduce=recdbl \
    "--trace.json_path=${out}/scf_trace.json" \
    "--report.json_path=${out}/scf_report.json" --obs.links=1 >/dev/null
  python3 "${repo}/tools/validate_trace.py" --require-ops \
    --trace "${out}/scf_trace.json" --report "${out}/scf_report.json"
  "${repo}/${dir}/bench/bench_fig3_latency" \
    "--report.json_path=${out}/BENCH_fig3.json" >/dev/null
  "${repo}/${dir}/bench/bench_fig4_bandwidth" --obs.links=1 \
    "--report.json_path=${out}/BENCH_fig4.json" >/dev/null
  python3 "${repo}/tools/validate_trace.py" --report "${out}/BENCH_fig3.json"
  python3 "${repo}/tools/validate_trace.py" --report "${out}/BENCH_fig4.json"
  # Hierarchical-collective gate: the same SCF at 8 ranks/node with the
  # allreduce pinned to the two-level schedule must emit coll-hop flows
  # on the per-group 'grp/...' tracks (node + leaders stages).
  "${repo}/${dir}/examples/scf_walkthrough" --ranks=16 --ranks_per_node=8 \
    --nbf=24 --block=8 --task_us=50 --distributed_guess=1 \
    --coll.algo.allreduce=hier \
    "--trace.json_path=${out}/scf_hier_trace.json" \
    "--report.json_path=${out}/scf_hier_report.json" >/dev/null
  python3 "${repo}/tools/validate_trace.py" --require-grp \
    --trace "${out}/scf_hier_trace.json" \
    --report "${out}/scf_hier_report.json"
  # End-to-end integrity gate (docs/faults.md): the chaos soak must
  # converge bit-for-bit under randomized combined fault plans, and a
  # traced corrupt run must pair every planted flip ('packet corrupt'
  # instant) with a transport-CRC catch ('corruption nack' instant)
  # while the report agrees (flips_detected == flips_injected).
  python3 "${repo}/tools/chaos_soak.py" --quick \
    --bin "${repo}/${dir}/examples/scf_walkthrough" --outdir "${out}"
  "${repo}/${dir}/examples/scf_walkthrough" --ranks=16 --ranks_per_node=8 \
    --nbf=24 --block=8 --task_us=50 --iterations=3 --distributed_guess=1 \
    --coll.algo.allreduce=hier --fault.seed=3 --fault.corrupt_prob=0.1 \
    "--trace.json_path=${out}/scf_corrupt_trace.json" \
    "--report.json_path=${out}/scf_corrupt_report.json" >/dev/null
  python3 "${repo}/tools/validate_trace.py" --require-integrity \
    --trace "${out}/scf_corrupt_trace.json" \
    --report "${out}/scf_corrupt_report.json"
}

kvs_gate() {
  # KV durability + determinism gate (docs/kvs.md): the sharded KV
  # bench must survive a soak with packet loss, corruption, AND a
  # mid-run node death (the bench exits 1 on any lost acked write or a
  # faa exactly-once mismatch), with every injected flip caught by the
  # transport CRC; and two identical runs must emit bitwise-identical
  # kvs.* metrics.
  local dir="$1" out="${repo}/$1/kvs-gate"
  echo "=== kvs gate: ${dir}" >&2
  mkdir -p "${out}"
  "${repo}/${dir}/bench/bench_abl_kvs" --ranks=32 --requests=16 \
    --failstop_ranks=32 --fault.seed=5 --fault.drop_prob=0.005 \
    --fault.corrupt_prob=0.005 \
    "--report.json_path=${out}/BENCH_kvs_soak.json" >/dev/null
  python3 - "${out}/BENCH_kvs_soak.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
m = {}
for e in doc["metrics"]:
    m.setdefault(e["name"], []).append(e)
for name in ("kvs.lost_acked_writes", "kvs.torn_reads"):
    for e in m[name]:
        assert e.get("value", 0) == 0, (name, e)
inj = sum(e.get("value", 0) for e in m["integrity.flips_injected"])
det = sum(e.get("value", 0) for e in m["integrity.flips_detected"])
assert inj > 0 and inj == det, (inj, det)
mixes = {(e.get("labels") or {}).get("mix") for e in m["kvs.acked_ops"]}
assert {"zipfian", "uniform", "failstop"} <= mixes, mixes
print(f"kvs soak OK: flips {det}/{inj} caught, mixes {sorted(mixes)}")
PY
  "${repo}/${dir}/bench/bench_abl_kvs" --ranks=24 --requests=16 \
    --failstop=0 "--report.json_path=${out}/BENCH_kvs_a.json" >/dev/null
  "${repo}/${dir}/bench/bench_abl_kvs" --ranks=24 --requests=16 \
    --failstop=0 "--report.json_path=${out}/BENCH_kvs_b.json" >/dev/null
  python3 "${repo}/tools/bench_diff.py" --fail-over 0 --metric kvs. \
    "${out}/BENCH_kvs_a.json" "${out}/BENCH_kvs_b.json"
}

overload_gate() {
  # Overload-control gate (docs/overload.md): past saturation the
  # flow-on arm must hold its goodput plateau (>= 85% of the on-arm
  # peak at 2x load) while the uncontrolled arm collapses (< 50% of
  # its own peak); the metastability soak must recover with the
  # controls on (>= 90% of pre-stall goodput) and stay degraded with
  # them off; and two identical runs must emit bitwise-identical
  # flow.* metrics.
  local dir="$1" out="${repo}/$1/overload-gate"
  echo "=== overload gate: ${dir}" >&2
  mkdir -p "${out}"
  "${repo}/${dir}/bench/bench_abl_overload" --hedge=0 \
    "--report.json_path=${out}/BENCH_overload.json" >/dev/null
  python3 - "${out}/BENCH_overload.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
goodput, soak = {}, {}
for e in doc["metrics"]:
    lab = e.get("labels") or {}
    if e["name"] == "kvs.goodput_mops" and "load" in lab:
        goodput[(lab["arm"], lab["load"])] = e["value"]
    if e["name"].startswith("overload.soak_"):
        soak[(e["name"], lab["arm"])] = e["value"]
peak = {arm: max(v for (a, l), v in goodput.items() if a == arm and l != "soak")
        for arm in ("on", "off")}
on2 = goodput[("on", "2.0")]
off2 = goodput[("off", "2.0")]
assert on2 >= 0.85 * peak["on"], (on2, peak["on"])
assert off2 < 0.50 * peak["off"], (off2, peak["off"])
pre_on = soak[("overload.soak_pre_goodput", "on")]
post_on = soak[("overload.soak_post_goodput", "on")]
pre_off = soak[("overload.soak_pre_goodput", "off")]
post_off = soak[("overload.soak_post_goodput", "off")]
assert post_on >= 0.90 * pre_on, (post_on, pre_on)
assert post_off < 0.50 * pre_off, (post_off, pre_off)
print(f"overload OK: on 2x holds {on2 / peak['on']:.0%} of peak "
      f"(off collapses to {off2 / peak['off']:.0%}), "
      f"soak recovers {post_on / pre_on:.0%} on / {post_off / pre_off:.0%} off")
PY
  "${repo}/${dir}/bench/bench_abl_overload" --factors=1.5 --soak=0 --hedge=0 \
    "--report.json_path=${out}/BENCH_overload_a.json" >/dev/null
  "${repo}/${dir}/bench/bench_abl_overload" --factors=1.5 --soak=0 --hedge=0 \
    "--report.json_path=${out}/BENCH_overload_b.json" >/dev/null
  python3 "${repo}/tools/bench_diff.py" --fail-over 0 --metric flow. \
    "${out}/BENCH_overload_a.json" "${out}/BENCH_overload_b.json"
  python3 "${repo}/tools/bench_diff.py" --fail-over 0 --metric kvs. \
    "${out}/BENCH_overload_a.json" "${out}/BENCH_overload_b.json"
}

timeline_gate() {
  # Continuous-telemetry gate (docs/observability.md): a traced
  # overload run with obs.timeline + obs.critpath on must emit a
  # schema-valid pgasq.timeline section whose counter totals reconcile
  # with the run's own metrics, a critical-path section whose segment
  # sums hold the attribution identity, and the timeline CSV; and the
  # same run with every obs.* knob unset must print byte-identical
  # stdout (zero-cost-off guarantee).
  local dir="$1" out="${repo}/$1/timeline-gate"
  echo "=== timeline gate: ${dir}" >&2
  mkdir -p "${out}"
  "${repo}/${dir}/bench/bench_abl_overload" --factors=1.5 --soak=0 \
    --hedge=0 --obs.timeline=1 --obs.critpath=1 \
    "--obs.timeline_csv=${out}/timeline.csv" \
    "--report.json_path=${out}/BENCH_overload_tl.json" \
    > "${out}/stdout_tl.txt"
  python3 "${repo}/tools/validate_trace.py" --require-timeline \
    --report "${out}/BENCH_overload_tl.json"
  python3 "${repo}/tools/critical_path.py" \
    "${out}/BENCH_overload_tl.json" >/dev/null
  [[ -s "${out}/timeline.csv" ]] || {
    echo "timeline gate: empty/missing ${out}/timeline.csv" >&2; exit 1; }
  "${repo}/${dir}/bench/bench_abl_overload" --factors=1.5 --soak=0 \
    --hedge=0 > "${out}/stdout_off.txt"
  "${repo}/${dir}/bench/bench_abl_overload" --factors=1.5 --soak=0 \
    --hedge=0 --obs.timeline=1 --obs.critpath=1 \
    > "${out}/stdout_on.txt"
  # The obs-on run must leave every pre-existing line untouched: its
  # stdout minus the timeline/critpath sections == the obs-off stdout
  # (virtual time unchanged — observation never perturbs the run).
  python3 - "${out}/stdout_off.txt" "${out}/stdout_on.txt" <<'PY'
import sys
off = open(sys.argv[1]).read()
on = open(sys.argv[2]).read()
for line in off.splitlines():
    assert line in on, f"obs-on run lost line: {line!r}"
assert on != off, "obs.timeline=1 printed no timeline section"
print("timeline gate OK: obs-on stdout is a superset, timings unchanged")
PY
}

async_gate() {
  # Async-runtime gate (docs/async.md): a traced overlapped-SCF run
  # must emit cross-track nbc-hop flows with one-sided put/get traffic
  # interleaved inside their window (the energy iallreduce makes
  # incremental progress instead of blocking), plus the async.* gauge
  # series in the timeline; both arms of the overlap bench must agree
  # on the Fock checksum and energy (asserted in-binary), and two
  # identical bench runs must emit bitwise-identical async.* metrics.
  local dir="$1" out="${repo}/$1/async-gate"
  echo "=== async gate: ${dir}" >&2
  mkdir -p "${out}"
  "${repo}/${dir}/examples/scf_walkthrough" --ranks=8 --nbf=24 --block=8 \
    --task_us=50 --distributed_guess=1 --iterations=3 \
    --coll.algo.allreduce=recdbl --async.scf_overlap=1 --obs.timeline=1 \
    "--trace.json_path=${out}/scf_async_trace.json" \
    "--report.json_path=${out}/scf_async_report.json" >/dev/null
  python3 "${repo}/tools/validate_trace.py" --require-nbc \
    --trace "${out}/scf_async_trace.json" \
    --report "${out}/scf_async_report.json"
  python3 - "${out}/scf_async_report.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
names = {s["name"] for s in doc.get("timeline", {}).get("series", [])}
want = {"async.pending_futures", "async.cont_queue_depth"}
assert want <= names, f"missing async timeline series: {want - names}"
print(f"async timeline OK: {sorted(want)} present")
PY
  "${repo}/${dir}/bench/bench_abl_async" --ranks=64 --ranks_per_node=16 \
    --nbf=128 --block=8 --iterations=2 --task_us=500 \
    "--report.json_path=${out}/BENCH_async_a.json" >/dev/null
  "${repo}/${dir}/bench/bench_abl_async" --ranks=64 --ranks_per_node=16 \
    --nbf=128 --block=8 --iterations=2 --task_us=500 \
    "--report.json_path=${out}/BENCH_async_b.json" >/dev/null
  python3 "${repo}/tools/bench_diff.py" --fail-over 0 --metric async. \
    "${out}/BENCH_async_a.json" "${out}/BENCH_async_b.json"
}

pass build-check
obs_gate build-check
async_gate build-check
kvs_gate build-check
overload_gate build-check
timeline_gate build-check
pass build-check-ubsan -DPGASQ_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
if [[ "${run_asan}" == 1 ]]; then
  # Validation tests abort mid-run by throwing out of an SPMD body;
  # abandoned fibers' heap is unreachable by design (see lsan.supp).
  export LSAN_OPTIONS="suppressions=${repo}/tools/lsan.supp:print_suppressions=0"
  pass build-check-asan -DPGASQ_SANITIZE=address
fi

echo "=== all checks passed" >&2
