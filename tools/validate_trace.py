#!/usr/bin/env python3
"""Validate pgasq observability artifacts.

Checks a Chrome trace-event JSON (--trace) and/or a pgasq.report JSON
(--report) for well-formedness and the invariants the runtime promises:

trace:
  * top level is {"traceEvents": [...]} and every event carries the
    required keys for its phase;
  * flow pairing — every flow start ('s') has exactly one finish ('f')
    with the same id, every step/finish has a start, and points of one
    flow are time-ordered (s <= t <= f in virtual time);
  * with --require-ops, the trace must demonstrate the PR's acceptance
    flows: at least one put, one get, one collective hop and one ack
    flow whose endpoints sit on *different* tracks (arrows across rank
    tracks in Perfetto);
  * with --require-grp, the trace must carry process-group collective
    traffic: at least one cross-track 'coll hop' flow with an endpoint
    on a 'grp/...' track (the per-group engines of src/grp — e.g. the
    node and leaders stages of a hierarchical allreduce);
  * with --require-nbc, the trace must carry non-blocking collective
    traffic: at least one cross-track 'nbc hop' flow (the NbcEngine's
    one-sided schedule messages), and at least one put or get flow
    point whose timestamp falls strictly inside the nbc flow-point
    window — the collective made incremental progress interleaved with
    one-sided traffic instead of running to completion in one block;
  * with --require-integrity, the trace must show the detect/repair
    story on the 'faults' track: every 'packet corrupt' instant (the
    injector planting a flip) is matched by a 'corruption nack'
    instant (the receiver's CRC catching it), both counts >= 1. With
    --report also given, the report's integrity.flips_detected /
    flips_injected must agree with each other and with the trace.

report:
  * schema == "pgasq.report" and a schema_version this tool knows;
  * metrics entries are well-formed (name/type/value);
  * per-link bucket sums equal each link's byte total, and the sum over
    links equals metrics obs.link_bytes_total (when links are present);
  * with --require-timeline, the report must carry a pgasq.timeline v1
    section (obs.timeline=1): series sorted by name, per-series bucket
    sums reconciling with the series sample totals, gauge bucket
    mean <= max <= series peak — and the timeline's counter totals
    must reconcile with the end-of-run metrics the same run published
    (pami.retransmits vs armci.retransmits, flow.credit_stalls,
    flow.deadline_shed_server vs flow.expired_server).

Exit code 0 on success; 1 with a message on the first violation.
"""

import argparse
import json
import sys

KNOWN_SCHEMA_VERSIONS = {1}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {what} {path}: {e}")


def validate_trace(path, require_ops, require_grp, require_nbc=False,
                   require_integrity=False):
    doc = load(path, "trace")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("trace top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")

    flows = {}  # id -> list of (phase, ts, tid, name)
    tracks = {}  # tid -> thread name
    instants = []  # (tid, name)
    n_slices = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph is None:
            fail(f"event {i} has no 'ph'")
        if ph == "M":
            if ev.get("name") == "thread_name":
                tracks[ev.get("tid")] = ev.get("args", {}).get("name", "")
            continue
        for key in ("ts", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} (ph={ph}) missing '{key}'")
        if ph in ("B", "E"):
            n_slices += 1
        elif ph == "X":
            if "dur" not in ev:
                fail(f"complete event {i} missing 'dur'")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                fail(f"flow event {i} missing 'id'")
            if ev.get("cat") != "flow":
                fail(f"flow event {i} must have cat='flow'")
            if ph == "f" and ev.get("bp") != "e":
                fail(f"flow finish {i} must carry bp='e'")
            flows.setdefault(ev["id"], []).append(
                (ph, ev["ts"], ev["tid"], ev.get("name", "")))
        elif ph == "i":
            if "s" not in ev:
                fail(f"instant event {i} missing scope 's'")
            instants.append((ev["tid"], ev.get("name", "")))
        elif ph != "C":
            fail(f"event {i} has unknown phase {ph!r}")

    order = {"s": 0, "t": 1, "f": 2}
    for fid, points in flows.items():
        phases = [p for p, _, _, _ in points]
        if phases.count("s") != 1:
            fail(f"flow {fid} has {phases.count('s')} starts (want 1): {points}")
        if phases.count("f") != 1:
            fail(f"flow {fid} has {phases.count('f')} finishes (want 1): {points}")
        pts = sorted(points, key=lambda p: (order[p[0]], p[1]))
        ts = [t for _, t, _, _ in pts]
        if ts != sorted(ts):
            fail(f"flow {fid} points are not time-ordered: {points}")

    if require_ops:
        def cross_track(prefix):
            for points in flows.values():
                named = [p for p in points if prefix in p[3]]
                if not named:
                    continue
                tids = {tid for _, _, tid, _ in points}
                if len(tids) >= 2:
                    return True
            return False

        for prefix, what in (("put", "put"), ("get", "get"),
                             ("coll hop", "collective hop")):
            if not cross_track(prefix):
                fail(f"no cross-track {what} flow found (--require-ops)")
        acks = [p for points in flows.values() for p in points
                if "ack" in p[3]]
        if not acks:
            fail("no ack flow point found (--require-ops)")
        if not any(len({tid for _, _, tid, _ in points}) >= 2
                   and any("ack" in name for _, _, _, name in points)
                   for points in flows.values()):
            fail("no cross-track ack flow found (--require-ops)")

    if require_grp:
        grp_tracks = {tid for tid, name in tracks.items()
                      if name.startswith("grp/")}
        if not grp_tracks:
            fail("no 'grp/...' tracks in trace (--require-grp): "
                 "no process-group collective engine recorded anything")
        hit = False
        for points in flows.values():
            if not any("coll hop" in name for _, _, _, name in points):
                continue
            tids = {tid for _, _, tid, _ in points}
            if len(tids) >= 2 and tids & grp_tracks:
                hit = True
                break
        if not hit:
            fail("no cross-track 'coll hop' flow touching a grp/ track "
                 "(--require-grp)")
        labels = sorted({tracks[t].split("/")[1] for t in grp_tracks
                         if len(tracks[t].split("/")) >= 2})
        print(f"validate_trace: grp OK — group tracks for {labels}")

    if require_nbc:
        nbc_ts = []
        n_nbc = 0
        for points in flows.values():
            if not any("nbc hop" in name for _, _, _, name in points):
                continue
            if len({tid for _, _, tid, _ in points}) >= 2:
                n_nbc += 1
                nbc_ts.extend(t for _, t, _, _ in points)
        if not n_nbc:
            fail("no cross-track 'nbc hop' flow in trace (--require-nbc): "
                 "no non-blocking collective recorded anything")
        lo, hi = min(nbc_ts), max(nbc_ts)
        overlapped = sum(
            1 for points in flows.values()
            for _, t, _, name in points
            if ("put" in name or "get" in name) and "nbc" not in name
            and lo < t < hi)
        if not overlapped:
            fail("no put/get flow point strictly inside the nbc-hop window "
                 f"[{lo}, {hi}] (--require-nbc): the collective did not "
                 "make incremental progress interleaved with one-sided "
                 "traffic")
        print(f"validate_trace: nbc OK — {n_nbc} cross-track nbc-hop flows, "
              f"{overlapped} one-sided flow points inside their window")

    trace_flips = None
    if require_integrity:
        fault_tids = {tid for tid, name in tracks.items() if name == "faults"}
        if not fault_tids:
            fail("no 'faults' track in trace (--require-integrity): "
                 "was the run traced with a fault plan?")
        corrupt = sum(1 for tid, name in instants
                      if tid in fault_tids and name == "packet corrupt")
        nacks = sum(1 for tid, name in instants
                    if tid in fault_tids and name == "corruption nack")
        if corrupt < 1:
            fail("no 'packet corrupt' instant on the faults track "
                 "(--require-integrity): the injector planted nothing")
        if nacks != corrupt:
            fail(f"{corrupt} 'packet corrupt' instants but {nacks} "
                 f"'corruption nack' instants (--require-integrity): "
                 f"a flip escaped CRC detection")
        trace_flips = corrupt
        print(f"validate_trace: integrity OK — {corrupt} flips planted, "
              f"{nacks} caught by transport CRC")

    print(f"validate_trace: trace OK — {len(events)} events, "
          f"{len(flows)} flows, {len(tracks)} named tracks, "
          f"{n_slices} slice edges")
    return trace_flips


KNOWN_TIMELINE_VERSIONS = {1}

# (timeline series, report metric): the timeline's bucket-summed
# counter total must equal the end-of-run counter the same subsystem
# published — the hooks and the stats tick in the same places.
TIMELINE_RECONCILE = (
    ("pami.retransmits", "armci.retransmits"),
    ("flow.credit_stalls", "flow.credit_stalls"),
    ("flow.deadline_shed_server", "flow.expired_server"),
    ("flow.deadline_expired_client", "flow.expired_client"),
)


def validate_timeline(tl, by_name):
    if tl.get("schema") != "pgasq.timeline":
        fail(f"timeline schema is {tl.get('schema')!r}, want 'pgasq.timeline'")
    version = tl.get("schema_version")
    if version not in KNOWN_TIMELINE_VERSIONS:
        fail(f"unknown timeline schema_version {version!r}")
    if not (isinstance(tl.get("bucket_us"), (int, float))
            and tl["bucket_us"] > 0):
        fail(f"timeline bucket_us must be positive, got {tl.get('bucket_us')!r}")
    series = tl.get("series")
    if not isinstance(series, list):
        fail("timeline 'series' must be an array")
    names = [s.get("name") for s in series]
    if names != sorted(names):
        fail("timeline series are not sorted by name")
    totals = {}
    for s in series:
        name, kind = s.get("name"), s.get("kind")
        if kind not in ("gauge", "counter"):
            fail(f"timeline series {name!r} has unknown kind {kind!r}")
        buckets = s.get("buckets")
        if not isinstance(buckets, list):
            fail(f"timeline series {name!r} 'buckets' must be an array")
        idxs = [b[0] for b in buckets]
        if idxs != sorted(idxs):
            fail(f"timeline series {name!r} buckets are not time-ordered")
        bucket_sum = sum(b[1] for b in buckets)
        if bucket_sum != s.get("samples"):
            fail(f"timeline series {name!r} bucket sum {bucket_sum} "
                 f"!= samples {s.get('samples')}")
        if kind == "gauge":
            for b in buckets:
                if len(b) != 4:
                    fail(f"timeline gauge {name!r} bucket {b!r} must be "
                         f"[idx, count, mean, max]")
                if b[2] > b[3] + 1e-9 or b[3] > s.get("peak", 0) + 1e-9:
                    fail(f"timeline gauge {name!r} bucket {b!r} violates "
                         f"mean <= max <= peak ({s.get('peak')})")
        else:
            totals[name] = bucket_sum
            if any(len(b) != 2 for b in buckets):
                fail(f"timeline counter {name!r} buckets must be [idx, value]")
    for tl_name, metric in TIMELINE_RECONCILE:
        if tl_name not in totals or metric not in by_name:
            continue
        want = by_name[metric]["value"]
        if totals[tl_name] != want:
            fail(f"timeline {tl_name} total {totals[tl_name]} != "
                 f"metric {metric} {want}")
    hit = [t for t, m in TIMELINE_RECONCILE if t in totals and m in by_name]
    print(f"validate_trace: timeline OK — schema v{version}, "
          f"{len(series)} series, reconciled {hit or 'nothing'} "
          f"against metrics")


def validate_report(path, require_integrity=False, trace_flips=None,
                    require_timeline=False):
    doc = load(path, "report")
    if doc.get("schema") != "pgasq.report":
        fail(f"report schema is {doc.get('schema')!r}, want 'pgasq.report'")
    version = doc.get("schema_version")
    if version not in KNOWN_SCHEMA_VERSIONS:
        fail(f"unknown report schema_version {version!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail("report 'metrics' must be an array")
    by_name = {}
    for i, m in enumerate(metrics):
        if not isinstance(m, dict) or "name" not in m or "type" not in m:
            fail(f"metric {i} malformed: {m!r}")
        if m["type"] == "histogram":
            if "total" not in m or "buckets" not in m:
                fail(f"histogram metric {m['name']} missing total/buckets")
            if sum(m["buckets"]) != m["total"]:
                fail(f"histogram {m['name']} buckets sum {sum(m['buckets'])}"
                     f" != total {m['total']}")
        elif "value" not in m:
            fail(f"metric {m['name']} missing 'value'")
        by_name.setdefault(m["name"], m)

    links = doc.get("links")
    if links is not None:
        total = 0
        for link in links.get("links", []):
            bucket_sum = sum(b for _, b in link.get("buckets", []))
            if bucket_sum != link["bytes"]:
                fail(f"link {link.get('name')} bucket sum {bucket_sum}"
                     f" != total {link['bytes']}")
            total += link["bytes"]
        want = by_name.get("obs.link_bytes_total")
        if want is not None and total != want["value"]:
            fail(f"sum over links {total} != obs.link_bytes_total"
                 f" {want['value']}")

    if require_integrity:
        injected = by_name.get("integrity.flips_injected")
        detected = by_name.get("integrity.flips_detected")
        if injected is None or detected is None:
            fail("report has no integrity.flips_injected/flips_detected "
                 "metrics (--require-integrity)")
        if detected["value"] != injected["value"]:
            fail(f"report says {injected['value']} flips injected but "
                 f"{detected['value']} detected (--require-integrity): "
                 f"silent escape")
        if trace_flips is not None and injected["value"] != trace_flips:
            fail(f"report counts {injected['value']} injected flips but "
                 f"the trace shows {trace_flips} 'packet corrupt' "
                 f"instants (--require-integrity)")

    timeline = doc.get("timeline")
    if require_timeline and timeline is None:
        fail("report has no 'timeline' section (--require-timeline): "
             "was the run launched with --obs.timeline=1?")
    if timeline is not None:
        validate_timeline(timeline, by_name)

    trace = doc.get("trace")
    if trace is not None and trace.get("truncated"):
        print("validate_trace: note — report says the trace was truncated",
              file=sys.stderr)

    print(f"validate_trace: report OK — schema v{version}, "
          f"{len(metrics)} metrics"
          + (f", {len(links.get('links', []))} links" if links else ""))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace-event JSON to validate")
    ap.add_argument("--report", help="pgasq.report JSON to validate")
    ap.add_argument("--require-ops", action="store_true",
                    help="require cross-track put/get/coll-hop/ack flows")
    ap.add_argument("--require-grp", action="store_true",
                    help="require cross-track coll-hop flows on grp/ tracks")
    ap.add_argument("--require-nbc", action="store_true",
                    help="require cross-track nbc-hop flows interleaved "
                         "with one-sided put/get traffic")
    ap.add_argument("--require-integrity", action="store_true",
                    help="require matched packet-corrupt/corruption-nack "
                         "instants and detected == injected in the report")
    ap.add_argument("--require-timeline", action="store_true",
                    help="require a pgasq.timeline section in the report "
                         "and reconcile its counter totals with metrics")
    args = ap.parse_args()
    if not args.trace and not args.report:
        ap.error("nothing to do: pass --trace and/or --report")
    trace_flips = None
    if args.trace:
        trace_flips = validate_trace(args.trace, args.require_ops,
                                     args.require_grp, args.require_nbc,
                                     args.require_integrity)
    if args.report:
        validate_report(args.report, args.require_integrity, trace_flips,
                        args.require_timeline)


if __name__ == "__main__":
    main()
