#!/usr/bin/env python3
"""Chaos soak: SCF must converge bit-for-bit under randomized fault plans.

Drives examples/scf_walkthrough (the paper's Fig 10 Fock build, run
under both progress modes) through a sweep of seeded, randomized
combined fault plans — packet loss, silent single-bit corruption, a
hard link failure, a progress stall, and (in full mode) a fail-stop
node death with checkpoint rollback — and asserts the end-to-end
integrity contract:

  1. bitwise convergence — the Fock checksum's raw IEEE-754 bit
     pattern (`fock_bits` in the walkthrough's report lines) is
     identical to the fault-free baseline for BOTH progress modes, on
     every seed. %.6f printing would round away a single flipped
     mantissa bit; the bit pattern cannot.
  2. zero silent escapes — the machine-readable report's
     integrity.flips_detected equals integrity.flips_injected: every
     corruption the injector planted was caught by a transport CRC
     (what the NACK/retransmit path then repaired is covered by 1).
  3. the sweep actually injected — summed over all seeds, at least
     one flip was planted (guards against a plan that silently
     stopped corrupting, which would make 1 and 2 vacuous).

Usage:
  tools/chaos_soak.py [--bin PATH] [--quick] [--seeds N] [--outdir DIR]

--quick runs 2 seeds of the small workload (the CI gate); the default
full soak runs 4 seeds plus the node-death scenario. Reports land in
--outdir (a temp dir by default). Exit 0 on success, 1 with a message
on the first violated invariant.
"""

import argparse
import json
import os
import random
import re
import subprocess
import sys
import tempfile

FOCK_RE = re.compile(r"fock_bits ([0-9a-f]{16})")

# The transient-fault workload: 16 ranks across two 8-rank nodes, a
# small Fock build with the density routed through ga_put
# (distributed_guess) and the energy reduction pinned to the two-level
# hierarchical schedule — together that keeps >48 B payloads (the
# CRC-eligible kind) flowing on every lane the PR touches: put, get,
# acc, strided, and collective slots.
WORKLOAD = [
    "--ranks=16", "--ranks_per_node=8", "--nbf=24", "--block=8",
    "--task_us=50", "--iterations=3", "--distributed_guess=1",
    "--coll.algo.allreduce=hier",
]

# The fail-stop scenario needs deaths aimed into the iteration loop
# and a buddy on a different node, so it runs the test suite's
# geometry: 8 single-rank nodes, long tasks, death mid-iteration 1
# (after the first checkpoint commits — a real rollback, not a cold
# restart, so checkpoint digests are validated on the restore path).
DEATH_WORKLOAD = [
    "--ranks=8", "--ranks_per_node=1", "--nbf=64", "--block=8",
    "--task_us=5000", "--iterations=3",
]
DEATH_PLAN = [
    "--fault.corrupt_prob=0.02", "--fault.node_fail=2:50000",
    "--ft.checkpoint_interval=1",
]


def fail(msg):
    print(f"chaos_soak: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_scf(binary, args, label):
    cmd = [binary] + args
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        fail(f"{label}: {' '.join(cmd)} exited {proc.returncode}:\n"
             f"{proc.stdout}")
    bits = FOCK_RE.findall(proc.stdout)
    if len(bits) != 2:
        fail(f"{label}: expected fock_bits lines for both progress modes, "
             f"got {len(bits)}:\n{proc.stdout}")
    return bits  # [Default, AsyncThread]


def integrity_metrics(report_path, label):
    try:
        with open(report_path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{label}: cannot load report {report_path}: {e}")
    metrics = {m["name"]: m.get("value") for m in doc.get("metrics", [])}
    for key in ("integrity.flips_injected", "integrity.flips_detected"):
        if key not in metrics:
            fail(f"{label}: report {report_path} has no metric {key}")
    return metrics


def make_plan(seed, ranks, nodes):
    """Deterministic randomized combined fault plan for one seed."""
    rng = random.Random(seed)
    plan = [
        f"--fault.seed={seed}",
        f"--fault.drop_prob={rng.uniform(0.002, 0.01):.6f}",
        # High enough that P(zero flips over the run's ~100 eligible
        # legs) is small; invariant 3 still guards the aggregate.
        f"--fault.corrupt_prob={rng.uniform(0.06, 0.15):.6f}",
    ]
    if rng.random() < 0.7:
        node = rng.randrange(nodes)
        plan.append(f"--fault.link_fail={node}:0:{rng.choice('+-')}")
    if rng.random() < 0.7:
        rank = rng.randrange(ranks)
        begin = rng.uniform(100.0, 500.0)
        end = begin + rng.uniform(100.0, 400.0)
        plan.append(f"--fault.stall={rank}:{begin:.1f}:{end:.1f}")
    return plan


def soak_transient(binary, outdir, seeds):
    baseline = run_scf(binary, WORKLOAD, "baseline")
    if baseline[0] != baseline[1]:
        fail(f"baseline: Default and AsyncThread disagree "
             f"({baseline[0]} vs {baseline[1]}) without any faults")
    print(f"chaos_soak: baseline fock_bits {baseline[0]} "
          f"(both progress modes)")

    total_injected = 0
    for seed in seeds:
        plan = make_plan(seed, ranks=16, nodes=2)
        report = os.path.join(outdir, f"soak_seed{seed}.json")
        label = f"seed {seed}"
        bits = run_scf(binary, WORKLOAD + plan +
                       [f"--report.json_path={report}"], label)
        for mode, b in zip(("Default", "AsyncThread"), bits):
            if b != baseline[0]:
                fail(f"{label}: {mode} converged to fock_bits {b}, "
                     f"baseline is {baseline[0]} — corruption escaped "
                     f"end-to-end integrity (plan: {' '.join(plan)})")
        m = integrity_metrics(report, label)
        injected = m["integrity.flips_injected"]
        detected = m["integrity.flips_detected"]
        if detected != injected:
            fail(f"{label}: {injected} flips injected but {detected} "
                 f"detected — silent escape (plan: {' '.join(plan)})")
        total_injected += injected
        print(f"chaos_soak: {label} OK — fock_bits match, "
              f"{injected} flips injected, {detected} detected, "
              f"{m.get('integrity.nack_retransmits', 0)} retransmits "
              f"({' '.join(p.removeprefix('--fault.') for p in plan)})")
    if total_injected < 1:
        fail(f"no flips injected across {len(seeds)} seeds — the sweep "
             f"is not exercising corruption at all")
    return total_injected


def soak_node_death(binary, outdir):
    baseline = run_scf(binary, DEATH_WORKLOAD, "death baseline")
    report = os.path.join(outdir, "soak_death.json")
    bits = run_scf(binary, DEATH_WORKLOAD + DEATH_PLAN +
                   ["--fault.seed=5", f"--report.json_path={report}"],
                   "node death")
    for mode, b in zip(("Default", "AsyncThread"), bits):
        if b != baseline[0]:
            fail(f"node death: {mode} converged to fock_bits {b}, "
                 f"baseline is {baseline[0]} — checkpoint rollback "
                 f"changed the physics")
    m = integrity_metrics(report, "node death")
    if m["integrity.flips_detected"] != m["integrity.flips_injected"]:
        fail(f"node death: {m['integrity.flips_injected']} flips injected "
             f"but {m['integrity.flips_detected']} detected")
    if m.get("integrity.ckpt_digests_validated", 0) < 1:
        fail("node death: rollback happened but no checkpoint digest was "
             "validated — the restore path skipped self-checking")
    print(f"chaos_soak: node death OK — fock_bits match through rollback, "
          f"{m['integrity.flips_injected']} flips detected, "
          f"{m['integrity.ckpt_digests_validated']} checkpoint digests "
          f"validated")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin", default="./build/examples/scf_walkthrough",
                    help="scf_walkthrough binary to drive")
    ap.add_argument("--quick", action="store_true",
                    help="2 seeds, no node-death scenario (the CI gate)")
    ap.add_argument("--seeds", type=int, default=None,
                    help="number of seeds (default: 2 quick, 4 full)")
    ap.add_argument("--seed-base", type=int, default=1,
                    help="first seed of the sweep")
    ap.add_argument("--outdir", default=None,
                    help="where reports land (default: a temp dir)")
    args = ap.parse_args()

    if not os.path.exists(args.bin):
        fail(f"binary {args.bin} not found — build first "
             f"(cmake --build build --target scf_walkthrough)")
    outdir = args.outdir or tempfile.mkdtemp(prefix="chaos_soak.")
    os.makedirs(outdir, exist_ok=True)

    n = args.seeds if args.seeds is not None else (2 if args.quick else 4)
    seeds = list(range(args.seed_base, args.seed_base + n))
    total = soak_transient(args.bin, outdir, seeds)
    if not args.quick:
        soak_node_death(args.bin, outdir)
    print(f"chaos_soak: PASS — {n} seeds"
          + ("" if args.quick else " + node-death scenario")
          + f", {total} flips injected and detected, every run converged "
          f"bit-for-bit with the fault-free baseline (reports: {outdir})")


if __name__ == "__main__":
    main()
