#!/usr/bin/env python3
"""Render critical-path bottleneck tables from a pgasq.report JSON.

Usage: tools/critical_path.py REPORT.json [--top K] [--json]

Consumes the pgasq.critpath v1 section a run emits under
--obs.critpath=1 (see docs/observability.md): every wire leg's
end-to-end latency split into inject-wait / serialization / wire / ack
segments, aggregated per op class, per bottleneck link, and per source
rank. Before rendering, the exact-sum identity is checked — the four
segments must sum to the measured leg latency, per aggregate and
overall — so a drifting attribution fails loudly instead of producing
a plausible-looking table.

Text output (default): a phase summary, then top-k tables of the worst
op classes, links (ranked by wire + inject-wait — the share a faulted
or congested wire adds), and source ranks. --json emits the same
ranked content as one machine-readable document.

Exit code 0 on success; 1 on a malformed report or a violated
identity.
"""

import argparse
import json
import sys

KNOWN_SCHEMA_VERSIONS = {1}
SEGS = ("inject_wait_us", "ser_us", "wire_us", "ack_us")
# Sub-microsecond slack: the C++ side sums integer picoseconds
# exactly; only the JSON's us conversion rounds.
TOL_US = 1e-3


def fail(msg):
    print(f"critical_path: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def seg_sum(entry):
    return sum(entry.get(k, 0.0) for k in SEGS)


def check_identity(label, entry):
    total = entry.get("total_us", 0.0)
    if abs(seg_sum(entry) - total) > TOL_US:
        fail(f"{label}: segments sum to {seg_sum(entry):.6f}us but "
             f"total_us is {total:.6f}us — attribution identity violated")


def load_critpath(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    cp = doc.get("critpath", doc)  # also accept a bare critpath doc
    if cp.get("schema") != "pgasq.critpath":
        fail(f"{path}: no pgasq.critpath section — was the run launched "
             f"with --obs.critpath=1?")
    if cp.get("schema_version") not in KNOWN_SCHEMA_VERSIONS:
        fail(f"{path}: unknown critpath schema_version "
             f"{cp.get('schema_version')!r}")
    segments = cp.get("segments")
    if not isinstance(segments, dict):
        fail(f"{path}: critpath 'segments' must be an object")
    check_identity("segments", segments)
    if abs(segments.get("total_us", 0.0)
           - cp.get("total_latency_us", 0.0)) > TOL_US:
        fail(f"{path}: segments total {segments.get('total_us')}us != "
             f"measured latency {cp.get('total_latency_us')}us")
    group_sum = 0.0
    for entry in cp.get("classes", []):
        check_identity(f"class {entry.get('class')!r}", entry)
        group_sum += entry.get("total_us", 0.0)
    if cp.get("classes") and abs(group_sum - segments["total_us"]) > TOL_US:
        fail(f"{path}: class totals sum to {group_sum:.6f}us, want "
             f"{segments['total_us']:.6f}us")
    for entry in cp.get("links", []):
        check_identity(f"link {entry.get('name')!r}", entry)
    for entry in cp.get("ranks", []):
        check_identity(f"rank {entry.get('rank')}", entry)
    return cp


def wirewait(entry):
    return entry.get("inject_wait_us", 0.0) + entry.get("wire_us", 0.0)


def render_text(cp, top):
    seg = cp["segments"]
    total = seg["total_us"]
    legs = seg.get("legs", 0)
    print(f"critical path: {legs} wire legs, {total:.1f} us attributed")
    print("  phase summary (share of end-to-end latency):")
    for key, label in (("inject_wait_us", "inject-wait"), ("ser_us", "ser"),
                       ("wire_us", "wire"), ("ack_us", "ack")):
        v = seg.get(key, 0.0)
        share = 100.0 * v / total if total > 0 else 0.0
        print(f"    {label:<12} {v:>12.1f} us  {share:5.1f}%")
    deg = cp.get("degraded", {})
    if deg.get("legs", 0) > 0:
        ww, all_ww = wirewait(deg), wirewait(seg)
        share = 100.0 * ww / all_ww if all_ww > 0 else 0.0
        print(f"  degraded links: {deg['legs']} legs carry {ww:.1f} us of "
              f"wire+inject-wait ({share:.0f}% of all waiting)")

    def table(title, entries, key_field, metric, metric_label):
        if not entries:
            return
        ranked = sorted(entries, key=metric, reverse=True)[:top]
        print(f"  worst {title} (by {metric_label}, top {len(ranked)}):")
        for e in ranked:
            print(f"    {str(e.get(key_field)):<12} legs {e.get('legs', 0):<8}"
                  f" {metric(e):>12.1f} us"
                  + (f"  degraded legs {e['degraded_legs']}"
                     if e.get("degraded_legs") else ""))

    table("op classes", cp.get("classes", []), "class",
          lambda e: e.get("total_us", 0.0), "attributed latency")
    table("links", cp.get("links", []), "name", wirewait, "wire+inject-wait")
    table("ranks", cp.get("ranks", []), "rank",
          lambda e: e.get("total_us", 0.0), "attributed latency")


def render_json(cp, top):
    def ranked(entries, metric):
        return sorted(entries, key=metric, reverse=True)[:top]

    out = {
        "schema": "pgasq.critpath.summary",
        "schema_version": 1,
        "segments": cp["segments"],
        "degraded": cp.get("degraded", {}),
        "classes": ranked(cp.get("classes", []),
                          lambda e: e.get("total_us", 0.0)),
        "links": ranked(cp.get("links", []), wirewait),
        "ranks": ranked(cp.get("ranks", []),
                        lambda e: e.get("total_us", 0.0)),
    }
    json.dump(out, sys.stdout, indent=1)
    print()


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("report", help="pgasq.report JSON (with a critpath "
                                   "section) or a bare pgasq.critpath doc")
    ap.add_argument("--top", type=int, default=8,
                    help="rows per bottleneck table (default 8)")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable summary instead of text")
    args = ap.parse_args()
    cp = load_critpath(args.report)
    if args.json:
        render_json(cp, args.top)
    else:
        render_text(cp, args.top)


if __name__ == "__main__":
    main()
