// Fail-stop fault tolerance: a node death mid-run must be detected,
// the survivors must shrink the communicator, roll back to the newest
// complete checkpoint, and finish with the same physics as the
// fault-free run — and all of it must be deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/scf.hpp"
#include "coll/coll.hpp"
#include "core/comm.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "ft/liveness.hpp"
#include "ft/recovery.hpp"

namespace pgasq::armci {
namespace {

// 8 nodes on a 2x2x2 torus, one rank each: big enough that a node
// death leaves a non-power-of-two survivor clique (7 ranks) and the
// shrunk software schedules actually run.
WorldConfig cube8() {
  WorldConfig cfg;
  cfg.machine.num_ranks = 8;
  cfg.machine.ranks_per_node = 1;
  cfg.machine.dims = topo::Coord5{2, 2, 2, 1, 1};
  return cfg;
}

apps::ScfConfig small_scf() {
  apps::ScfConfig scf;
  scf.nbf = 64;
  scf.block = 8;
  scf.iterations = 3;
  scf.mean_task_compute = from_us(5000);
  return scf;
}

/// Fault-free reference: result plus the virtual time the SCF region
/// starts at (so fault times can be aimed into the run).
apps::ScfResult clean_reference(const apps::ScfConfig& scf, Time* scf_start) {
  World world(cube8());
  const apps::ScfResult r = apps::run_scf(world, scf);
  if (scf_start != nullptr) {
    *scf_start = world.machine().engine().now() - r.wall_time;
  }
  return r;
}

apps::ScfResult run_scf_with_deaths(const apps::ScfConfig& scf,
                                    const std::vector<fault::NodeFailSpec>& deaths,
                                    ft::FtStats* stats_out) {
  WorldConfig cfg = cube8();
  cfg.machine.fault.node_fails = deaths;
  World world(cfg);
  const apps::ScfResult r = apps::run_scf(world, scf);
  if (stats_out != nullptr) {
    const ft::HealthMonitor* mon = world.machine().monitor();
    EXPECT_NE(mon, nullptr);
    if (mon != nullptr) *stats_out = mon->stats();
  }
  return r;
}

// One SCF run per death timing: early in the run (before the first
// checkpoint commits — cold restart), mid-run (rollback to a committed
// checkpoint), and late (most work already behind a checkpoint). In
// every case the surviving 7 ranks must finish with the fault-free
// physics: the Fock checksum is a fixed-order read of per-element
// values each produced by exactly one accumulate, so it must match
// bit-for-bit; the energy reduction runs over a different clique, so
// it matches to reduction-order rounding.
TEST(FtRecovery, ScfSurvivesNodeDeathAtAnyPhase) {
  const apps::ScfConfig scf = small_scf();
  Time scf_start = 0;
  const apps::ScfResult clean = clean_reference(scf, &scf_start);
  ASSERT_GT(clean.wall_time, 0);

  for (const double frac : {0.15, 0.45, 0.75}) {
    const Time at = scf_start + static_cast<Time>(frac * clean.wall_time);
    ft::FtStats stats;
    const apps::ScfResult r =
        run_scf_with_deaths(scf, {{/*node=*/3, at}}, &stats);
    EXPECT_DOUBLE_EQ(r.fock_checksum, clean.fock_checksum) << "frac " << frac;
    EXPECT_NEAR(r.final_energy, clean.final_energy,
                1e-9 * std::abs(clean.final_energy))
        << "frac " << frac;
    EXPECT_EQ(stats.detections, 1u) << "frac " << frac;
    EXPECT_EQ(stats.ranks_lost, 1u) << "frac " << frac;
    EXPECT_GE(stats.rollbacks, 1u) << "frac " << frac;
    EXPECT_GT(stats.detection_delay, 0) << "frac " << frac;
    EXPECT_GT(r.wall_time, clean.wall_time) << "frac " << frac;
  }
}

TEST(FtRecovery, ScfSurvivesTwoDeaths) {
  const apps::ScfConfig scf = small_scf();
  Time scf_start = 0;
  const apps::ScfResult clean = clean_reference(scf, &scf_start);

  // Nodes 2 and 5 are not checkpoint buddies of each other, so every
  // shard keeps at least one live holder. The second death lands while
  // the survivors of the first are still mid-recovery or barely
  // resumed — either way they must shrink again and still finish.
  const Time first = scf_start + static_cast<Time>(0.5 * clean.wall_time);
  ft::FtStats stats;
  const apps::ScfResult r = run_scf_with_deaths(
      scf, {{/*node=*/2, first}, {/*node=*/5, first + from_us(400)}}, &stats);
  EXPECT_DOUBLE_EQ(r.fock_checksum, clean.fock_checksum);
  EXPECT_NEAR(r.final_energy, clean.final_energy,
              1e-9 * std::abs(clean.final_energy));
  EXPECT_EQ(stats.detections, 2u);
  EXPECT_EQ(stats.ranks_lost, 2u);
  // One rollback when both declarations land inside a single abort
  // window, two when the second death interrupts the first recovery.
  EXPECT_GE(stats.rollbacks, 1u);
}

TEST(FtRecovery, CheckpointIntervalZeroMeansColdRestart) {
  apps::ScfConfig scf = small_scf();
  scf.ft_checkpoint_interval = 0;  // recovery may only restart from scratch
  Time scf_start = 0;
  const apps::ScfResult clean = clean_reference(scf, &scf_start);

  ft::FtStats stats;
  const apps::ScfResult r = run_scf_with_deaths(
      scf, {{/*node=*/6, scf_start + static_cast<Time>(0.7 * clean.wall_time)}},
      &stats);
  EXPECT_DOUBLE_EQ(r.fock_checksum, clean.fock_checksum);
  EXPECT_EQ(stats.checkpoints, 0u);
  EXPECT_EQ(stats.checkpoint_bytes, 0u);
  // The whole run re-executes from iteration 0 on 7 ranks.
  EXPECT_GT(r.wall_time, 3 * clean.wall_time / 2);
}

TEST(FtRecovery, DeathDuringCollectiveUnblocksSurvivors) {
  WorldConfig cfg = cube8();
  cfg.machine.fault.node_fails.push_back({/*node=*/4, from_ms(15)});
  World world(cfg);
  int completed_loops = 0;
  world.spmd([&](Comm& comm) {
    coll::CollEngine::of(comm);
    ft::Runtime rt(comm, {}, std::vector<ga::GlobalArray*>{});
    int i = 0;
    while (i < 2000) {
      try {
        comm.compute(from_us(10));
        comm.barrier();  // engine-dispatched collective
        ++i;
      } catch (const ft::PeerDeadError&) {
        bool alive = true;
        while (true) {
          try {
            alive = rt.recover();
            break;
          } catch (const ft::PeerDeadError&) {
          }
        }
        if (!alive) return;
      }
    }
    if (comm.rank() == rt.members().front()) completed_loops = i;
  });
  EXPECT_EQ(completed_loops, 2000);
  ASSERT_NE(world.machine().monitor(), nullptr);
  const ft::FtStats& stats = world.machine().monitor()->stats();
  EXPECT_EQ(stats.detections, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.rollback_ranks, 7u);
  EXPECT_GT(stats.recovery_time, 0);
}

TEST(FtRecovery, RecoveryIsDeterministic) {
  const apps::ScfConfig scf = small_scf();
  Time scf_start = 0;
  const apps::ScfResult clean = clean_reference(scf, &scf_start);
  const std::vector<fault::NodeFailSpec> deaths = {
      {/*node=*/1, scf_start + static_cast<Time>(0.4 * clean.wall_time)}};

  // Virtual timings carry a known pre-existing run-to-run jitter when
  // several Worlds share one process (allocator-layout dependent), so
  // determinism is asserted on the physics and the protocol counters,
  // which must not wobble.
  ft::FtStats s1, s2;
  const apps::ScfResult a = run_scf_with_deaths(scf, deaths, &s1);
  const apps::ScfResult b = run_scf_with_deaths(scf, deaths, &s2);
  EXPECT_DOUBLE_EQ(a.final_energy, b.final_energy);
  EXPECT_DOUBLE_EQ(a.fock_checksum, b.fock_checksum);
  EXPECT_EQ(s1.detections, s2.detections);
  EXPECT_EQ(s1.ranks_lost, s2.ranks_lost);
  EXPECT_EQ(s1.checkpoints, s2.checkpoints);
  EXPECT_EQ(s1.checkpoint_bytes, s2.checkpoint_bytes);
  EXPECT_EQ(s1.rollbacks, s2.rollbacks);
}

// Zero-cost contract: without scheduled node deaths no monitor is
// built, the FT body is never entered, and detection knobs change
// nothing.
TEST(FtRecovery, NoScheduledDeathsBuildsNoMonitor) {
  const apps::ScfConfig scf = small_scf();
  World plain(cube8());
  const apps::ScfResult a = apps::run_scf(plain, scf);
  EXPECT_EQ(plain.machine().monitor(), nullptr);

  WorldConfig tuned = cube8();
  tuned.machine.ft.heartbeat_period = from_us(5);
  tuned.machine.ft.heartbeat_timeout = from_us(20);
  tuned.machine.ft.suspect_acks = 1;
  World world(tuned);
  const apps::ScfResult b = apps::run_scf(world, scf);
  EXPECT_EQ(world.machine().monitor(), nullptr);
  EXPECT_DOUBLE_EQ(a.fock_checksum, b.fock_checksum);
  EXPECT_DOUBLE_EQ(a.final_energy, b.final_energy);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
}

TEST(FtRecovery, ReportRendersRecoveryTable) {
  const apps::ScfConfig scf = small_scf();
  Time scf_start = 0;
  const apps::ScfResult clean = clean_reference(scf, &scf_start);

  WorldConfig cfg = cube8();
  cfg.machine.fault.node_fails.push_back(
      {/*node=*/3, scf_start + static_cast<Time>(0.5 * clean.wall_time)});
  World world(cfg);
  apps::run_scf(world, scf);
  const std::string report = render_report(world, {});
  EXPECT_NE(report.find("fail-stop recovery"), std::string::npos);
  EXPECT_NE(report.find("node deaths declared"), std::string::npos);
  EXPECT_NE(report.find("checkpoints committed"), std::string::npos);
  EXPECT_NE(report.find("rollbacks"), std::string::npos);
}

TEST(FtRuntimeConfig, ParsesAndRejectsUnknownKeys) {
  Config cfg;
  cfg.set("ft.checkpoint_interval", "4");
  cfg.set("ft.suspect_acks", "2");
  cfg.set("ft.heartbeat_period_us", "25");
  cfg.set("ft.heartbeat_timeout_us", "100");
  const ft::RuntimeConfig rc = ft::RuntimeConfig::from_config(cfg);
  EXPECT_EQ(rc.checkpoint_interval, 4);
  EXPECT_EQ(rc.liveness.suspect_acks, 2u);
  EXPECT_EQ(rc.liveness.heartbeat_period, from_us(25));
  EXPECT_EQ(rc.liveness.heartbeat_timeout, from_us(100));

  Config typo;
  typo.set("ft.checkpoint_intervall", "4");
  try {
    ft::RuntimeConfig::from_config(typo);
    FAIL() << "expected unknown-key rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checkpoint_intervall"), std::string::npos);
    EXPECT_NE(what.find("checkpoint_interval"), std::string::npos)
        << "error should suggest the near-miss key";
  }
}

}  // namespace
}  // namespace pgasq::armci
