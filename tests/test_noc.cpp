// Unit tests for the network models: LogGP algebra, alignment
// penalties, injection-FIFO ordering, the shared-memory path, and the
// link-contention model's occupancy behaviour.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "util/error.hpp"

namespace pgasq::noc {
namespace {

using topo::Torus5D;

BgqParameters test_params() { return BgqParameters::defaults(); }

TEST(LogGP, SerializationAndFlightMath) {
  Torus5D torus({4, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LogGPModel net(torus, p);
  // 1 hop, aligned size: arrive = start + m*G + L0 + hop.
  const std::uint64_t m = 4096;
  const auto t = net.transfer(0, 1, m, 1000);
  const Time ser = from_ns(p.g_ns_per_byte * static_cast<double>(m));
  EXPECT_EQ(t.inject_done, 1000 + ser);
  EXPECT_EQ(t.arrive, t.inject_done + p.wire_base_latency + p.hop_latency);
}

TEST(LogGP, AlignmentPenaltyBelowThresholdOnly) {
  Torus5D torus({2, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LogGPModel net(torus, p);
  const auto small = net.transfer(0, 1, 255, 0);
  const auto big = net.transfer(0, 1, 256, 0);
  const Time small_ser = small.inject_done;  // starts after prior inject
  // 255B pays the penalty; 256B does not — the Fig 3 dip.
  EXPECT_GT(small_ser, from_ns(p.g_ns_per_byte * 255));
  EXPECT_EQ(big.inject_done - small.inject_done,
            from_ns(p.g_ns_per_byte * 256.0));
}

TEST(LogGP, ControlPacketsExemptFromPenalty) {
  Torus5D torus({2, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LogGPModel net(torus, p);
  const auto ctl = net.control(0, 1, 0);
  EXPECT_EQ(ctl.inject_done,
            from_ns(p.g_ns_per_byte * static_cast<double>(p.control_packet_bytes)));
}

TEST(LogGP, HopCountScalesFlight) {
  Torus5D torus({8, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LogGPModel net(torus, p);
  const auto one = net.transfer(0, 1, 512, 0);
  const auto three = net.transfer(0, 3, 512, one.inject_done);
  const Time flight1 = one.arrive - one.inject_done;
  const Time flight3 = three.arrive - three.inject_done;
  EXPECT_EQ(flight3 - flight1, 2 * p.hop_latency);
}

TEST(LogGP, InjectionFifoPreservesPairwiseOrder) {
  Torus5D torus({2, 1, 1, 1, 1});
  LogGPModel net(torus, test_params());
  // Big message first, small second, issued at the same instant: the
  // small one must NOT overtake (PAMI pairwise ordering).
  const auto big = net.transfer(0, 1, 1 << 20, 0);
  const auto small = net.transfer(0, 1, 16, 0);
  EXPECT_GT(small.arrive, big.arrive);
  EXPECT_GE(small.inject_done, big.inject_done);
}

TEST(LogGP, SameNodeUsesSharedMemoryPath) {
  Torus5D torus({2, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LogGPModel net(torus, p);
  const auto t = net.transfer(0, 0, 1024, 0);
  EXPECT_EQ(t.inject_done, t.arrive);
  EXPECT_EQ(t.arrive, p.shm_latency + from_ns(p.shm_g_ns_per_byte * 1024.0));
}

TEST(LogGP, AccountsTraffic) {
  Torus5D torus({2, 1, 1, 1, 1});
  LogGPModel net(torus, test_params());
  net.transfer(0, 1, 100, 0);
  net.transfer(1, 0, 200, 0);
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(Contention, MatchesLogGPWhenUncontended) {
  Torus5D torus({4, 2, 1, 1, 1});
  const BgqParameters p = test_params();
  LogGPModel loggp(torus, p);
  LinkContentionModel cont(torus, p);
  const auto a = loggp.transfer(0, 5, 8192, 0);
  const auto b = cont.transfer(0, 5, 8192, 0);
  // Same serialization; per-hop pipelining differs by small constants.
  EXPECT_NEAR(to_us(a.arrive), to_us(b.arrive), 0.3);
}

TEST(Contention, SharedLinkSerializes) {
  Torus5D torus({4, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LinkContentionModel net(torus, p);
  // Two messages that both traverse link 0->1 at the same time.
  const auto first = net.transfer(0, 2, 1 << 16, 0);
  const auto second = net.transfer(0, 2, 1 << 16, 0);
  const Time ser = from_ns(p.g_ns_per_byte * static_cast<double>(1 << 16));
  EXPECT_GE(second.arrive - first.arrive, ser);
}

TEST(Contention, DisjointRoutesIndependent) {
  Torus5D torus({2, 2, 2, 1, 1});
  const BgqParameters p = test_params();
  LinkContentionModel net(torus, p);
  const auto a = net.transfer(0, 1, 1 << 16, 0);  // differs in E..? node 0->1
  const auto b = net.transfer(6, 7, 1 << 16, 0);  // far link, no sharing
  EXPECT_EQ(a.arrive - 0, b.arrive - 0);  // identical timing, no interference
}

TEST(Contention, LinkFreeAtTracksOccupancy) {
  Torus5D torus({4, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  LinkContentionModel net(torus, p);
  const auto t = net.transfer(0, 1, 1024, 0);
  const int link = torus.link_index(torus.route(0, 1)[0]);
  EXPECT_GE(net.link_free_at(link), t.inject_done);
}

TEST(Factory, ByNameAndUnknownRejected) {
  Torus5D torus({2, 1, 1, 1, 1});
  const BgqParameters p = test_params();
  EXPECT_NE(make_network_model("loggp", torus, p), nullptr);
  EXPECT_NE(make_network_model("contention", torus, p), nullptr);
  EXPECT_THROW(make_network_model("warp", torus, p), Error);
}

// Calibration guard: the constants must keep reproducing the paper's
// headline wire numbers (see DESIGN.md S4). If a parameter edit breaks
// these, the figures drift.
TEST(Calibration, SixteenByteServiceTimes) {
  const BgqParameters p = test_params();
  // One-way 16B data leg with penalty, 1 hop.
  const Time data_leg = from_ns(p.g_ns_per_byte * 16.0) + p.unaligned_penalty +
                        p.wire_base_latency + p.hop_latency;
  const Time req_leg = from_ns(p.g_ns_per_byte * 64.0) + p.wire_base_latency +
                       p.hop_latency;
  const Time get = p.o_send + req_leg + data_leg + p.o_completion;
  EXPECT_NEAR(to_us(get), 2.89, 0.05);  // paper: 2.89 us
  const Time put = p.o_send + from_ns(p.g_ns_per_byte * 16.0) +
                   p.unaligned_penalty + p.o_local_drain + p.o_completion;
  EXPECT_NEAR(to_us(put), 2.70, 0.06);  // paper: 2.7 us
}

}  // namespace
}  // namespace pgasq::noc
