// End-to-end data integrity: silent bit flips injected by the fabric
// must be detected and repaired byte-identically by the CRC-verified
// transport (detected == injected, no silent escapes), collective slot
// checksums must catch flips that land when transport verification is
// off, checkpoint digests must reject corrupted buffers before
// rollback, exhaustion on a corrupted leg must escalate to a typed
// IntegrityError, and the whole subsystem must cost nothing when off.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "core/comm.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "fault/integrity.hpp"
#include "ft/recovery.hpp"
#include "ga/collectives.hpp"
#include "ga/global_array.hpp"
#include "util/config.hpp"

namespace pgasq::armci {
namespace {

WorldConfig line(int n) {
  WorldConfig cfg;
  cfg.machine.num_ranks = n;
  cfg.machine.ranks_per_node = 1;
  cfg.machine.dims = topo::Coord5{n, 1, 1, 1, 1};
  return cfg;
}

/// Everything a run leaves behind that the assertions below care
/// about, captured before the World is torn down.
struct RunResult {
  std::vector<std::vector<std::byte>> bytes;  // read-back, per rank
  CommStats stats;
  fault::FaultStats fstats;
  fault::IntegrityStats istats;
  bool has_integrity = false;
  Time elapsed = 0;
};

/// Corruption-stress workload: contiguous put/get rounds, an
/// accumulate fan-in, a strided round-trip (typed path), and a notify
/// handshake. Returns every byte the ranks read back, concatenated.
RunResult run_workload(const WorldConfig& cfg) {
  constexpr std::size_t kBytes = 2048;
  RunResult out;
  out.bytes.resize(static_cast<std::size_t>(cfg.machine.num_ranks));
  World world(cfg);
  world.spmd([&](Comm& comm) {
    const int r = comm.rank();
    const int n = comm.nprocs();
    const int right = (r + 1) % n;
    auto& mem = comm.malloc_collective(kBytes);
    auto& acc_mem = comm.malloc_collective(sizeof(double) * 32);
    auto& grid = comm.malloc_collective(64 * 64);
    auto& flag = comm.malloc_collective(8);
    std::vector<std::byte>& bytes = out.bytes[static_cast<std::size_t>(r)];

    for (std::size_t round = 0; round < 16; ++round) {
      std::vector<std::byte> buf(kBytes);
      for (std::size_t i = 0; i < kBytes; ++i) {
        buf[i] = static_cast<std::byte>(
            (i * 31 + static_cast<std::size_t>(r) * 7 + round) & 0xFF);
      }
      comm.put(buf.data(), mem.at(right), kBytes);
      comm.fence(right);
      comm.barrier();
      std::vector<std::byte> back(kBytes);
      comm.get(mem.at(r), back.data(), kBytes);
      bytes.insert(bytes.end(), back.begin(), back.end());
      comm.barrier();
    }

    if (r == 0) {
      auto* d = reinterpret_cast<double*>(acc_mem.local(0));
      for (int i = 0; i < 32; ++i) d[i] = 1.0;
    }
    comm.barrier();
    std::vector<double> contrib(32);
    for (int i = 0; i < 32; ++i) contrib[static_cast<std::size_t>(i)] = i + r;
    comm.acc(2.0, contrib.data(), acc_mem.at(0), 32);
    comm.fence(0);
    comm.barrier();
    std::vector<double> sums(32);
    comm.get(acc_mem.at(0), sums.data(), sizeof(double) * 32);
    const auto* sum_bytes = reinterpret_cast<const std::byte*>(sums.data());
    bytes.insert(bytes.end(), sum_bytes, sum_bytes + sizeof(double) * 32);

    const StridedSpec spec = StridedSpec::rect2d(
        /*rows=*/16, /*row_bytes=*/48, /*src_pitch=*/64, /*dst_pitch=*/64);
    std::vector<std::byte> patch(64 * 16);
    for (std::size_t i = 0; i < patch.size(); ++i) {
      patch[i] =
          static_cast<std::byte>((i + static_cast<std::size_t>(r) * 13) & 0xFF);
    }
    comm.put_strided(patch.data(), grid.at(right), spec);
    comm.fence(right);
    comm.barrier();
    std::vector<std::byte> patch_back(64 * 16, std::byte{0});
    comm.get_strided(grid.at(r), patch_back.data(), spec);
    bytes.insert(bytes.end(), patch_back.begin(), patch_back.end());

    const std::int64_t token = 1000 + r;
    comm.put(&token, flag.at(right), sizeof token);
    comm.notify(right);
    const int left = (r + n - 1) % n;
    comm.wait_notify(left);
    std::int64_t got = 0;
    std::memcpy(&got, flag.local(r), sizeof got);
    const auto* tok = reinterpret_cast<const std::byte*>(&got);
    bytes.insert(bytes.end(), tok, tok + sizeof got);
    comm.barrier();
  });
  out.stats = world.total_stats();
  out.elapsed = world.elapsed();
  if (const fault::Injector* inj = world.machine().injector()) {
    out.fstats = inj->stats();
  }
  if (const fault::Integrity* ig = world.machine().integrity()) {
    out.has_integrity = true;
    out.istats = ig->stats();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Transport: CRC verification + NACK retransmit.

// A corruption-only plan at prime rank counts (no power-of-two
// shortcut can hide a hole), two seeds each: every flip the fabric
// injects must be detected (zero silent escapes), NACKed, and repaired
// so the data read back is byte-identical to the fault-free run.
TEST(Integrity, DetectsAndRepairsAtPrimeRankCounts) {
  for (const int n : {7, 13}) {
    const RunResult clean = run_workload(line(n));
    EXPECT_FALSE(clean.has_integrity);

    for (const std::uint64_t seed : {5ull, 11ull}) {
      WorldConfig cfg = line(n);
      cfg.machine.fault.seed = seed;
      cfg.machine.fault.corrupt_prob = 0.05;
      const RunResult r = run_workload(cfg);
      ASSERT_EQ(r.bytes.size(), clean.bytes.size());
      for (std::size_t rank = 0; rank < clean.bytes.size(); ++rank) {
        EXPECT_EQ(r.bytes[rank], clean.bytes[rank])
            << "rank " << rank << " of " << n << " read corrupted data, seed "
            << seed;
      }
      ASSERT_TRUE(r.has_integrity) << "corruption plan must build the layer";
      EXPECT_GT(r.fstats.packets_corrupted, 0u) << n << " ranks, seed " << seed;
      // The zero-silent-escapes invariant: every injected flip was
      // caught by a transport CRC check and answered with a NACK.
      EXPECT_EQ(r.istats.corruptions_detected, r.fstats.packets_corrupted)
          << n << " ranks, seed " << seed;
      EXPECT_EQ(r.istats.nacks_sent, r.istats.corruptions_detected);
      EXPECT_GT(r.istats.nack_retransmits, 0u);
      EXPECT_GT(r.istats.crc_checks, r.istats.corruptions_detected);
      EXPECT_GT(r.istats.echo_crc_acks, 0u);
    }
  }
}

TEST(Integrity, SameSeedSameRepair) {
  WorldConfig cfg = line(4);
  cfg.machine.fault.seed = 99;
  cfg.machine.fault.corrupt_prob = 0.05;
  const RunResult a = run_workload(cfg);
  const RunResult b = run_workload(cfg);
  EXPECT_EQ(a.fstats.packets_corrupted, b.fstats.packets_corrupted);
  EXPECT_EQ(a.istats.corruptions_detected, b.istats.corruptions_detected);
  EXPECT_EQ(a.istats.nack_retransmits, b.istats.nack_retransmits);
  EXPECT_EQ(a.stats.retransmits, b.stats.retransmits);
}

// Corruption windows gate injection in virtual time: a window that
// opens long after the run ends must inject nothing, even at a
// certain-fire probability — while verification stays armed.
TEST(Integrity, CorruptWindowInTheFutureInjectsNothing) {
  WorldConfig cfg = line(4);
  cfg.machine.fault.corrupt_prob = 0.5;
  cfg.machine.fault.corrupt_windows.push_back(
      fault::CorruptWindow{from_ms(1000000), fault::kForever});
  const RunResult r = run_workload(cfg);
  ASSERT_TRUE(r.has_integrity);
  EXPECT_EQ(r.fstats.packets_corrupted, 0u);
  EXPECT_EQ(r.istats.corruptions_detected, 0u);
  EXPECT_EQ(r.istats.nacks_sent, 0u);
  EXPECT_GT(r.istats.crc_checks, 0u);

  const RunResult clean = run_workload(line(4));
  for (std::size_t rank = 0; rank < clean.bytes.size(); ++rank) {
    EXPECT_EQ(r.bytes[rank], clean.bytes[rank]) << "rank " << rank;
  }
}

// A leg whose payload fails CRC on every attempt must burn the retry
// budget and escalate as IntegrityError (the typed corruption
// subclass), reporting the op, the ranks and the budget.
TEST(Integrity, RetryExhaustionOnCorruptionEscalatesToIntegrityError) {
  WorldConfig cfg = line(4);
  cfg.machine.fault.corrupt_prob = 0.9999;  // every attempt re-corrupts
  cfg.machine.fault.retry_budget = 4;
  World world(cfg);
  try {
    world.spmd([](Comm& comm) {
      std::vector<std::byte> buf(2048, std::byte{7});
      auto& mem = comm.malloc_collective(buf.size());
      if (comm.rank() == 0) {
        comm.put(buf.data(), mem.at(1), buf.size());
        comm.fence(1);
      }
      comm.barrier();
    });
    FAIL() << "expected IntegrityError, but the run completed";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.retries(), 4u);
    EXPECT_FALSE(e.operation().empty());
    EXPECT_NE(e.src_node(), e.dst_node());
    const std::string what = e.what();
    EXPECT_NE(what.find("integrity"), std::string::npos);
    EXPECT_NE(what.find("retry budget"), std::string::npos);
    EXPECT_NE(what.find("CRC"), std::string::npos);
    EXPECT_NE(what.find("rank"), std::string::npos)
        << "escalation should translate node ids to ranks";
  }
}

// ---------------------------------------------------------------------------
// Collectives: slot checksums catch flips that land.

// With transport verification off (integrity.verify=0) flipped bytes
// reach application memory — including collective slots. The slot
// checksum must detect the mid-tree corruption and re-request the slot
// from the sender's retained stage, so reductions still come out
// exact.
TEST(Integrity, SilentDeliveryCollSlotRepair) {
  constexpr int kRanks = 7;
  constexpr std::size_t kN = 512;
  WorldConfig cfg = line(kRanks);
  cfg.machine.fault.seed = 21;
  cfg.machine.fault.corrupt_prob = 0.05;
  cfg.machine.integrity.configured = true;
  cfg.machine.integrity.verify = false;  // let the flips land
  World world(cfg);
  world.spmd([&](Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    for (int round = 0; round < 10; ++round) {
      std::vector<double> x(kN);
      for (std::size_t i = 0; i < kN; ++i) {
        x[i] = comm.rank() + 10.0 * static_cast<double>(i);
      }
      engine.allreduce_sum(x.data(), x.size());
      // Exact integer arithmetic in doubles: any surviving bit flip
      // would show up as a wrong (or non-integral) element.
      const double rank_sum = kRanks * (kRanks - 1) / 2.0;
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_DOUBLE_EQ(x[i], rank_sum + 10.0 * static_cast<double>(i) * kRanks)
            << "element " << i << " round " << round << " on rank "
            << comm.rank();
      }
    }
    comm.barrier();
  });
  ASSERT_NE(world.machine().integrity(), nullptr);
  const fault::IntegrityStats& is = world.machine().integrity()->stats();
  EXPECT_GT(is.coll_slot_checks, 0u);
  EXPECT_GT(is.coll_slot_rejects, 0u) << "plan never corrupted a slot; "
                                         "raise rounds or corrupt_prob";
  EXPECT_GE(is.coll_slot_refetches, is.coll_slot_rejects);
}

// A corruption plan must deselect the hardware collective-logic model:
// it moves no torus packets, so it can neither suffer nor detect the
// planned flips — corruption runs must exercise the CRC-checked
// software schedules.
TEST(Integrity, CorruptionPlanDeselectsHardwareCollectives) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 16;
  cfg.machine.fault.corrupt_prob = 0.001;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    EXPECT_TRUE(engine.geometry().corruption);
    EXPECT_NE(engine.algo_for(coll::Op::kBarrier, 0), coll::Algo::kHw);
    EXPECT_NE(engine.algo_for(coll::Op::kAllreduce, 1 << 20), coll::Algo::kHw);
    engine.barrier();
  });
}

// ---------------------------------------------------------------------------
// Checkpoints: digests validated before rollback.

WorldConfig cube8() {
  WorldConfig cfg;
  cfg.machine.num_ranks = 8;
  cfg.machine.ranks_per_node = 1;
  cfg.machine.dims = topo::Coord5{2, 2, 2, 1, 1};
  return cfg;
}

/// Checkpoint-then-die harness: fills a 32x32 array with `iter`,
/// checkpoints at iters 1 and 2 (interval 1 => iter 1 in buffer 1,
/// iter 2 in buffer 0), poisons the buffers named in `poison`, then
/// spins until the scheduled death unwinds a barrier and recovery
/// runs. Returns the restart iteration and the restored element sum on
/// the lowest survivor.
void checkpoint_poison_run(const std::vector<int>& poison, int* restart_iter,
                           double* restored_sum) {
  WorldConfig cfg = cube8();
  cfg.machine.fault.node_fails.push_back({/*node=*/3, from_ms(60)});
  cfg.machine.integrity.configured = true;
  World world(cfg);
  world.spmd([&](Comm& comm) {
    ga::GlobalArray a(comm, 32, 32);
    auto fill = [&](double v) {
      const auto [rlo, rhi] = a.local_rows();
      const auto [clo, chi] = a.local_cols();
      double* d = a.local_data();
      const std::int64_t count = (rhi - rlo) * (chi - clo);
      for (std::int64_t i = 0; i < count; ++i) d[i] = v;
      comm.barrier();
    };
    coll::CollEngine::of(comm);
    ft::RuntimeConfig rc;
    rc.checkpoint_interval = 1;
    ft::Runtime rt(comm, rc, {&a});
    fill(1.0);
    rt.checkpoint(1, {&a});
    fill(2.0);
    rt.checkpoint(2, {&a});
    for (const int buf : poison) rt.poison_for_test(buf, 0);

    bool recovered = false;
    for (int i = 0; i < 40000 && !recovered; ++i) {
      try {
        comm.compute(from_us(10));
        comm.barrier();
      } catch (const ft::PeerDeadError&) {
        bool alive = true;
        while (true) {
          try {
            alive = rt.recover();
            break;
          } catch (const ft::PeerDeadError&) {
          }
        }
        if (!alive) return;  // this rank is the casualty
        recovered = true;
      }
    }
    ASSERT_TRUE(recovered) << "scheduled death never unwound the loop";

    ga::GlobalArray rebuilt(comm, 32, 32, rt.members());
    rt.restore({&rebuilt});
    const double sum = ga::element_sum(rebuilt);
    if (comm.rank() == rt.members().front()) {
      *restart_iter = rt.restart_iter();
      *restored_sum = sum;
    }
  });
  ASSERT_NE(world.machine().integrity(), nullptr);
  const fault::IntegrityStats& is = world.machine().integrity()->stats();
  EXPECT_GT(is.ckpt_digests_computed, 0u);
  EXPECT_GT(is.ckpt_digests_validated, 0u);
  EXPECT_GT(is.ckpt_digest_mismatches, 0u);
  if (poison.size() == 1) EXPECT_GE(is.ckpt_fallback_restores, 1u);
}

// Poisoning the newest checkpoint buffer must fail its digest
// validation and fall the recovery back to the older double-buffered
// copy — restoring iter 1's bits, not iter 2's garbage.
TEST(Integrity, CheckpointDigestMismatchFallsBackToOlderBuffer) {
  int restart_iter = -1;
  double restored_sum = 0.0;
  checkpoint_poison_run({/*newest buffer=*/0}, &restart_iter, &restored_sum);
  EXPECT_EQ(restart_iter, 1);
  EXPECT_DOUBLE_EQ(restored_sum, 32.0 * 32.0 * 1.0);
}

// When every committed buffer fails validation the run must abort
// loudly (IntegrityError) rather than roll back to garbage.
TEST(Integrity, AllCheckpointBuffersBadAbortsLoudly) {
  WorldConfig cfg = cube8();
  cfg.machine.fault.node_fails.push_back({/*node=*/3, from_ms(60)});
  cfg.machine.integrity.configured = true;
  World world(cfg);
  try {
    world.spmd([&](Comm& comm) {
      ga::GlobalArray a(comm, 32, 32);
      coll::CollEngine::of(comm);
      ft::RuntimeConfig rc;
      rc.checkpoint_interval = 1;
      ft::Runtime rt(comm, rc, {&a});
      rt.checkpoint(1, {&a});
      rt.checkpoint(2, {&a});
      rt.poison_for_test(0, 0);
      rt.poison_for_test(1, 0);
      for (int i = 0; i < 40000; ++i) {
        try {
          comm.compute(from_us(10));
          comm.barrier();
        } catch (const ft::PeerDeadError&) {
          while (true) {
            try {
              if (!rt.recover()) return;
              break;
            } catch (const ft::PeerDeadError&) {
            }
          }
          return;
        }
      }
    });
    FAIL() << "expected IntegrityError, but recovery restored something";
  } catch (const IntegrityError& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos);
    EXPECT_EQ(e.operation(), "checkpoint restore");
  }
}

// ---------------------------------------------------------------------------
// Zero-cost-off and reporting.

// No corruption planned and no integrity.* key set: the layer must not
// exist. An explicitly configured but fully disabled layer must leave
// the run byte-identical (data, counters, virtual time) to one without
// the layer at all.
TEST(Integrity, ZeroCostWhenOff) {
  World plain(line(4));
  plain.spmd([](Comm& comm) { comm.barrier(); });
  EXPECT_EQ(plain.machine().integrity(), nullptr);

  // Drop-only plans predate this subsystem and must not grow it.
  WorldConfig drops = line(4);
  drops.machine.fault.drop_prob = 0.01;
  World dropping(drops);
  dropping.spmd([](Comm& comm) { comm.barrier(); });
  EXPECT_EQ(dropping.machine().integrity(), nullptr);

  const RunResult off = run_workload(line(4));
  EXPECT_FALSE(off.has_integrity);

  WorldConfig disabled = line(4);
  disabled.machine.integrity.configured = true;
  disabled.machine.integrity.verify = false;
  disabled.machine.integrity.coll_check = false;
  disabled.machine.integrity.ckpt_digest = false;
  const RunResult idle = run_workload(disabled);
  EXPECT_TRUE(idle.has_integrity);
  // Not a single hook fired: no CRC passes, no slot checks, no digests.
  // (Virtual-time equality is not asserted here — Worlds sharing one
  // process carry a pre-existing allocator-layout timing jitter, see
  // test_ft_recovery.cpp — so the contract is checked on the data and
  // the deterministic protocol counters.)
  EXPECT_EQ(idle.istats.crc_checks, 0u);
  EXPECT_EQ(idle.istats.coll_slot_checks, 0u);
  EXPECT_EQ(idle.istats.ckpt_digests_computed, 0u);
  ASSERT_EQ(idle.bytes.size(), off.bytes.size());
  for (std::size_t rank = 0; rank < off.bytes.size(); ++rank) {
    EXPECT_EQ(idle.bytes[rank], off.bytes[rank]) << "rank " << rank;
  }
  EXPECT_EQ(idle.stats.retransmits, off.stats.retransmits);
}

TEST(Integrity, ReportRendersIntegrityTable) {
  WorldConfig cfg = line(4);
  cfg.machine.fault.corrupt_prob = 0.01;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(2048);
    std::vector<std::byte> buf(2048, std::byte{5});
    if (comm.rank() == 0) {
      for (int i = 0; i < 64; ++i) comm.put(buf.data(), mem.at(1), buf.size());
      comm.fence(1);
    }
    comm.barrier();
  });
  const std::string report = render_report(world, {});
  EXPECT_NE(report.find("end-to-end integrity"), std::string::npos);
  EXPECT_NE(report.find("transport CRC checks"), std::string::npos);
  EXPECT_NE(report.find("corruptions detected"), std::string::npos);
  EXPECT_NE(report.find("NACKs sent"), std::string::npos);
  EXPECT_NE(report.find("flips injected"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Configuration parsing.

TEST(IntegrityConfigTest, ParsesAllKnobs) {
  Config cfg;
  cfg.set("integrity.verify", "0");
  cfg.set("integrity.coll_check", "0");
  cfg.set("integrity.ckpt_digest", "0");
  cfg.set("integrity.crc_setup_ns", "5");
  cfg.set("integrity.crc_ns_per_byte", "0.01");
  const fault::IntegrityConfig ic = fault::IntegrityConfig::from_config(cfg);
  EXPECT_TRUE(ic.configured);
  EXPECT_FALSE(ic.verify);
  EXPECT_FALSE(ic.coll_check);
  EXPECT_FALSE(ic.ckpt_digest);
  EXPECT_DOUBLE_EQ(ic.crc_setup_ns, 5.0);
  EXPECT_DOUBLE_EQ(ic.crc_ns_per_byte, 0.01);

  const fault::IntegrityConfig defaults =
      fault::IntegrityConfig::from_config(Config{});
  EXPECT_FALSE(defaults.configured);
  EXPECT_TRUE(defaults.verify);
  EXPECT_TRUE(defaults.coll_check);
  EXPECT_TRUE(defaults.ckpt_digest);
}

TEST(IntegrityConfigTest, ParsesCorruptionKnobs) {
  Config cfg;
  cfg.set("fault.corrupt_prob", "0.001");
  cfg.set("fault.corrupt_bits", "3");
  cfg.set("fault.corrupt_window", "10:20,30:40");
  const fault::FaultPlan plan = fault::FaultPlan::from_config(cfg);
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.001);
  EXPECT_EQ(plan.corrupt_bits, 3);
  ASSERT_EQ(plan.corrupt_windows.size(), 2u);
  EXPECT_EQ(plan.corrupt_windows[0].begin, from_us(10));
  EXPECT_EQ(plan.corrupt_windows[0].end, from_us(20));
  EXPECT_EQ(plan.corrupt_windows[1].begin, from_us(30));
  EXPECT_EQ(plan.corrupt_windows[1].end, from_us(40));
}

TEST(IntegrityConfigTest, RejectsNearMissKeysWithSuggestion) {
  Config typo;
  typo.set("fault.corrupt_bitz", "2");
  try {
    fault::FaultPlan::from_config(typo);
    FAIL() << "expected unknown-key rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("corrupt_bitz"), std::string::npos);
    EXPECT_NE(what.find("corrupt_bits"), std::string::npos)
        << "error should suggest the near-miss key";
  }

  Config typo2;
  typo2.set("integrity.verfy", "0");
  try {
    fault::IntegrityConfig::from_config(typo2);
    FAIL() << "expected unknown-key rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("verfy"), std::string::npos);
    EXPECT_NE(what.find("verify"), std::string::npos)
        << "error should suggest the near-miss key";
  }
}

}  // namespace
}  // namespace pgasq::armci
