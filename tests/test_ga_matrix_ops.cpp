// GA matrix utilities: copy / scale / add / transpose / symmetrize /
// norm, checked against direct element reads over several process
// counts (parameterized) to cover uneven distributions.
#include <gtest/gtest.h>

#include "ga/collectives.hpp"
#include "ga/matrix_ops.hpp"

namespace pgasq::ga {
namespace {

class MatrixOps : public ::testing::TestWithParam<int> {
 protected:
  armci::WorldConfig cfg() {
    armci::WorldConfig c;
    c.machine.num_ranks = GetParam();
    return c;
  }
};

TEST_P(MatrixOps, CopyScaleAdd) {
  armci::World world(cfg());
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 15, 11);
    GlobalArray b(comm, 15, 11);
    GlobalArray c(comm, 15, 11);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 1.0 * i + 0.5 * j; });
    a.sync();
    copy(a, b);
    scale(b, 3.0);
    add(1.0, a, 2.0, b, c);  // c = a + 6a = 7a
    EXPECT_DOUBLE_EQ(c.read_element(7, 4), 7.0 * (7.0 + 2.0));
    EXPECT_DOUBLE_EQ(c.read_element(14, 10), 7.0 * (14.0 + 5.0));
    comm.barrier();
  });
}

TEST_P(MatrixOps, TransposeSquareAndRect) {
  armci::World world(cfg());
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 13, 13);
    GlobalArray at(comm, 13, 13);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 100.0 * i + j; });
    transpose_into(a, at);
    EXPECT_DOUBLE_EQ(at.read_element(3, 9), 100.0 * 9 + 3);
    EXPECT_DOUBLE_EQ(at.read_element(12, 0), 100.0 * 0 + 12);
    // Rectangular: 6x10 -> 10x6.
    GlobalArray r(comm, 6, 10);
    GlobalArray rt(comm, 10, 6);
    r.fill_local([](std::int64_t i, std::int64_t j) { return 10.0 * i + j; });
    transpose_into(r, rt);
    EXPECT_DOUBLE_EQ(rt.read_element(7, 2), 10.0 * 2 + 7);
    comm.barrier();
  });
}

TEST_P(MatrixOps, SymmetrizeProducesSymmetricMatrix) {
  armci::World world(cfg());
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 12, 12);
    GlobalArray scratch(comm, 12, 12);
    a.fill_local([](std::int64_t i, std::int64_t j) {
      return static_cast<double>(3 * i - 2 * j);
    });
    symmetrize(a, scratch);
    for (std::int64_t i = 0; i < 12; i += 5) {
      for (std::int64_t j = 0; j < 12; j += 3) {
        const double ij = a.read_element(i, j);
        const double ji = a.read_element(j, i);
        EXPECT_DOUBLE_EQ(ij, ji);
        // (3i-2j + 3j-2i)/2 = (i+j)/2.
        EXPECT_DOUBLE_EQ(ij, (i + j) / 2.0);
      }
    }
    comm.barrier();
  });
}

TEST_P(MatrixOps, NormMatchesDot) {
  armci::World world(cfg());
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 9, 9);
    a.fill_local([](std::int64_t i, std::int64_t j) { return i == j ? 2.0 : 0.0; });
    a.sync();
    EXPECT_NEAR(norm2(a), 9 * 4.0, 1e-9);
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, MatrixOps, ::testing::Values(1, 2, 4, 6));

TEST(MatrixOpsErrors, ShapeMismatchesRejected) {
  armci::WorldConfig c;
  c.machine.num_ranks = 2;
  armci::World world(c);
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 GlobalArray a(comm, 8, 8);
                 GlobalArray b(comm, 8, 7);
                 copy(a, b);
               }),
               Error);
}

}  // namespace
}  // namespace pgasq::ga
