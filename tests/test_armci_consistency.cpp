// Location consistency & conflict tracking (S III-E): the tracker unit
// behaviour, forced-fence semantics, and the naive-vs-per-region false
// positive difference the paper's dgemm example motivates.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "core/consistency.hpp"

namespace pgasq::armci {
namespace {

TEST(ConflictTracker, PerTargetCountsAndAcks) {
  ConflictTracker t(ConsistencyMode::kPerTarget, 4);
  EXPECT_FALSE(t.read_requires_fence(1, 7));
  const auto k1 = t.on_write_initiated(1, 7);
  const auto k2 = t.on_write_initiated(1, 9);
  EXPECT_EQ(t.outstanding_to(1), 2u);
  EXPECT_EQ(t.outstanding_total(), 2u);
  // Naive mode: ANY region on target 1 conflicts.
  EXPECT_TRUE(t.read_requires_fence(1, 7));
  EXPECT_TRUE(t.read_requires_fence(1, 12345));
  EXPECT_FALSE(t.read_requires_fence(2, 7));
  t.on_write_acked(k1);
  EXPECT_TRUE(t.read_requires_fence(1, 7));
  t.on_write_acked(k2);
  EXPECT_FALSE(t.read_requires_fence(1, 7));
  EXPECT_EQ(t.outstanding_total(), 0u);
}

TEST(ConflictTracker, PerRegionDiscriminates) {
  ConflictTracker t(ConsistencyMode::kPerRegion, 4);
  const auto k = t.on_write_initiated(1, 7);
  EXPECT_TRUE(t.read_requires_fence(1, 7));
  EXPECT_FALSE(t.read_requires_fence(1, 8)) << "different region must not conflict";
  EXPECT_FALSE(t.read_requires_fence(2, 7));
  EXPECT_EQ(t.outstanding_to_region(1, 7), 1u);
  EXPECT_EQ(t.outstanding_to_region(1, 8), 0u);
  EXPECT_EQ(t.status(1, 7) & StatusBits::kWrite, StatusBits::kWrite);
  EXPECT_EQ(t.status(1, 8), 0);
  t.on_write_acked(k);
  EXPECT_FALSE(t.read_requires_fence(1, 7));
}

TEST(ConflictTracker, UnknownRegionZeroAliasesEverything) {
  ConflictTracker t(ConsistencyMode::kPerRegion, 2);
  const auto k = t.on_write_initiated(1, 0);  // unknown-region write
  EXPECT_TRUE(t.read_requires_fence(1, 7)) << "unknown write aliases all";
  EXPECT_TRUE(t.read_requires_fence(1, 0));
  t.on_write_acked(k);
  const auto k2 = t.on_write_initiated(1, 7);
  EXPECT_TRUE(t.read_requires_fence(1, 0)) << "unknown read aliases all";
  t.on_write_acked(k2);
}

TEST(ConflictTracker, AckUnderflowRejected) {
  ConflictTracker t(ConsistencyMode::kPerRegion, 2);
  const auto k = t.on_write_initiated(1, 3);
  t.on_write_acked(k);
  EXPECT_THROW(t.on_write_acked(k), Error);
}

namespace {
WorldConfig cfg_with(ConsistencyMode mode) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.armci.consistency = mode;
  return cfg;
}
}  // namespace

TEST(Consistency, DgemmPatternNaiveForcesFencesPerRegionDoesNot) {
  // Accumulates to structure C interleaved with gets from structure A
  // on the SAME target. Naive: every get fences. Per-region: none.
  for (const auto mode :
       {ConsistencyMode::kPerTarget, ConsistencyMode::kPerRegion}) {
    World world(cfg_with(mode));
    std::uint64_t forced = 0;
    world.spmd([&](Comm& comm) {
      auto& a = comm.malloc_collective(sizeof(double) * 64);
      auto& c = comm.malloc_collective(sizeof(double) * 64);
      std::vector<double> buf(64, 1.0);
      if (comm.rank() == 0) {
        for (int i = 0; i < 10; ++i) {
          comm.acc(1.0, buf.data(), c.at(1), 64);  // write C
          comm.get(a.at(1), buf.data(), sizeof(double) * 64);  // read A
        }
        comm.fence_all();
        forced = comm.stats().forced_fences;
      }
      comm.barrier();
    });
    if (mode == ConsistencyMode::kPerTarget) {
      EXPECT_GE(forced, 9u) << "naive tracking must fence A-gets behind C-accs";
    } else {
      EXPECT_EQ(forced, 0u) << "per-region tracking must not false-positive";
    }
  }
}

TEST(Consistency, GetAfterAccSameRegionSeesValueBothModes) {
  for (const auto mode :
       {ConsistencyMode::kPerTarget, ConsistencyMode::kPerRegion}) {
    World world(cfg_with(mode));
    world.spmd([&](Comm& comm) {
      auto& mem = comm.malloc_collective(sizeof(double) * 8);
      if (comm.rank() == 0) {
        std::vector<double> ones(8, 1.0);
        // Non-blocking: initiation never advances the progress engine,
        // so all five writes are still unacknowledged at the get.
        Handle h;
        for (int i = 0; i < 5; ++i) comm.nb_acc(1.0, ones.data(), mem.at(1), 8, h);
        double back[8] = {};
        comm.get(mem.at(1), back, sizeof back);
        EXPECT_DOUBLE_EQ(back[3], 5.0) << "get must observe all prior accs";
        EXPECT_GE(comm.stats().forced_fences, 1u);
        comm.wait(h);
      }
      comm.barrier();
    });
  }
}

TEST(Consistency, FenceWaitsForRemoteCompletion) {
  World world(cfg_with(ConsistencyMode::kPerRegion));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 20);
    auto* buf = comm.malloc_local(1 << 20);
    if (comm.rank() == 0) {
      Handle h;
      comm.nb_put(buf, mem.at(1), 1 << 20, h);
      EXPECT_GT(comm.conflict_tracker().outstanding_to(1), 0u);
      comm.fence(1);
      EXPECT_EQ(comm.conflict_tracker().outstanding_to(1), 0u);
      comm.wait(h);
    }
    comm.barrier();
  });
}

TEST(Consistency, FenceAllCoversManyTargets) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 8;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(4096);
    std::vector<double> v(16, 2.0);
    if (comm.rank() == 0) {
      Handle h;
      for (int t = 1; t < comm.nprocs(); ++t) {
        comm.nb_acc(1.0, v.data(), mem.at(t), 16, h);
      }
      // Acks for the earliest accs may already have landed (they are
      // wire-level events); the most recent writes must still be open.
      EXPECT_GT(comm.conflict_tracker().outstanding_total(), 0u);
      comm.fence_all();
      EXPECT_EQ(comm.conflict_tracker().outstanding_total(), 0u);
    }
    comm.barrier();
  });
}

TEST(Consistency, RmwOnCounterRegionDoesNotFenceOtherAccs) {
  // Per-region: a fetch-and-add on the counter structure must not wait
  // for outstanding Fock-matrix accumulates (the SCF-critical case).
  World world(cfg_with(ConsistencyMode::kPerRegion));
  world.spmd([](Comm& comm) {
    auto& fock = comm.malloc_collective(sizeof(double) * 1024);
    auto& counter = comm.malloc_collective(8);
    if (comm.rank() == 0) {
      std::vector<double> v(1024, 1.0);
      comm.acc(1.0, v.data(), fock.at(1), 1024);
      const auto fences_before = comm.stats().forced_fences;
      comm.fetch_add(counter.at(1), 1);
      EXPECT_EQ(comm.stats().forced_fences, fences_before)
          << "counter rmw must not fence Fock accs";
      comm.fence_all();
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
