// Observability subsystem: flow pairing in recorded traces, the
// versioned JSON report, per-link accounting reconciliation, registry
// determinism, and the zero-cost-when-disabled guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "core/comm.hpp"
#include "core/report.hpp"
#include "core/report_json.hpp"
#include "obs/json.hpp"
#include "obs/link_usage.hpp"
#include "obs/registry.hpp"
#include "pami/machine.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace pgasq {
namespace {

/// A small mixed workload touching every instrumented path: rdma put /
/// get, fetch_add, a collective broadcast, and async-thread progress.
void mixed_workload(armci::Comm& comm) {
  auto& mem = comm.malloc_collective(4096);
  auto* buf = static_cast<std::byte*>(comm.malloc_local(4096));
  const int peer = (comm.rank() + 1) % comm.nprocs();
  comm.put(buf, mem.at(peer, 64), 256);
  comm.fence(peer);
  comm.get(mem.at(peer), buf, 256);
  comm.fetch_add(mem.at(0), 1);
  double x = comm.rank() == 0 ? 41.0 : 0.0;
  coll::CollEngine::of(comm).broadcast(&x, sizeof x, 0);
  EXPECT_EQ(x, 41.0);
  comm.barrier();
}

armci::WorldConfig traced_config(const std::string& trace_path) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  cfg.machine.trace_json_path = trace_path;
  cfg.armci.progress = armci::ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  // A software schedule so the broadcast exercises the slot transport
  // (the hw collective-logic model has no per-hop messages to trace).
  cfg.armci.coll.emplace_back("algo.broadcast", "binomial");
  return cfg;
}

/// Config from "key=value" pairs (the CLI parser minus the CLI).
Config cfg_of(std::initializer_list<std::pair<std::string, std::string>> kvs) {
  Config c;
  for (const auto& [k, v] : kvs) c.set(k, v);
  return c;
}

obs::Json load_json(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path << " missing";
  std::stringstream ss;
  ss << in.rdbuf();
  return obs::Json::parse(ss.str());
}

TEST(Observability, EveryFlowStartHasExactlyOneFinish) {
  const std::string path = "/tmp/pgasq_obs_flows.json";
  std::remove(path.c_str());
  armci::World world(traced_config(path));
  world.spmd(mixed_workload);

  const obs::Json doc = load_json(path);
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  struct Flow {
    int starts = 0, steps = 0, finishes = 0;
    std::set<std::uint64_t> tids;
    std::vector<std::string> names;
  };
  std::map<std::string, Flow> flows;  // id literal -> accounting
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& ev = events[i];
    const std::string ph = ev.at("ph").as_string();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    EXPECT_EQ(ev.at("cat").as_string(), "flow");
    Flow& f = flows[ev.at("id").dump()];
    if (ph == "s") ++f.starts;
    if (ph == "t") ++f.steps;
    if (ph == "f") ++f.finishes;
    f.tids.insert(ev.at("tid").as_uint());
    f.names.push_back(ev.at("name").as_string());
  }
  ASSERT_FALSE(flows.empty());
  bool cross_track = false;
  std::set<std::string> seen_ops;
  for (const auto& [id, f] : flows) {
    EXPECT_EQ(f.starts, 1) << "flow " << id;
    EXPECT_EQ(f.finishes, 1) << "flow " << id;
    if (f.tids.size() >= 2) cross_track = true;
    for (const std::string& n : f.names) {
      if (n.find("put") != std::string::npos) seen_ops.insert("put");
      if (n.find("get") != std::string::npos) seen_ops.insert("get");
      if (n.find("coll hop") != std::string::npos) seen_ops.insert("coll");
      if (n.find("ack") != std::string::npos) seen_ops.insert("ack");
    }
  }
  EXPECT_TRUE(cross_track) << "no flow spans two tracks";
  EXPECT_TRUE(seen_ops.count("put"));
  EXPECT_TRUE(seen_ops.count("get"));
  EXPECT_TRUE(seen_ops.count("coll"));
  EXPECT_TRUE(seen_ops.count("ack"));
  std::remove(path.c_str());
}

TEST(Observability, JsonReportRoundTripsAndCarriesSchema) {
  const std::string path = "/tmp/pgasq_obs_report.json";
  std::remove(path.c_str());
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  cfg.machine.obs.links = true;
  armci::World world(cfg);
  world.spmd(mixed_workload);
  armci::write_json_report(world, path);

  const obs::Json doc = load_json(path);
  EXPECT_EQ(doc.at("schema").as_string(), "pgasq.report");
  EXPECT_EQ(doc.at("schema_version").as_int(), armci::kReportSchemaVersion);
  EXPECT_EQ(doc.at("machine").at("ranks").as_int(), 4);
  EXPECT_TRUE(doc.at("metrics").is_array());
  EXPECT_GT(doc.at("metrics").size(), 20u);
  // Parse -> dump -> parse is a fixed point (numbers keep their text).
  const std::string once = doc.dump();
  EXPECT_EQ(obs::Json::parse(once).dump(), once);
  std::remove(path.c_str());
}

TEST(Observability, LinkTotalsReconcile) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 8;
  cfg.machine.ranks_per_node = 1;
  cfg.machine.obs.links = true;
  armci::World world(cfg);
  world.spmd(mixed_workload);

  const obs::LinkUsage* lu = world.machine().link_usage();
  ASSERT_NE(lu, nullptr);
  EXPECT_GT(lu->transfers(), 0u);
  EXPECT_GT(lu->injected_bytes(), 0u);
  // Every wire transfer crosses >= 1 link, so bytes x hops dominates
  // the injected payload.
  EXPECT_GE(lu->link_bytes_total(), lu->injected_bytes());
  // The JSON export's per-link bucket sums must equal the link totals
  // and add up to link_bytes_total.
  const obs::Json j = lu->to_json();
  std::uint64_t total = 0;
  const obs::Json& links = j.at("links");
  for (std::size_t i = 0; i < links.size(); ++i) {
    const obs::Json& link = links[i];
    std::uint64_t bucket_sum = 0;
    const obs::Json& buckets = link.at("buckets");
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      bucket_sum += buckets[b][1].as_uint();
    }
    EXPECT_EQ(bucket_sum, link.at("bytes").as_uint());
    total += link.at("bytes").as_uint();
  }
  EXPECT_EQ(total, lu->link_bytes_total());
  // Same totals in both noc models (recording is model-independent).
  cfg.machine.network_model = "contention";
  armci::World world2(cfg);
  world2.spmd(mixed_workload);
  EXPECT_EQ(world2.machine().link_usage()->injected_bytes(),
            lu->injected_bytes());
}

TEST(Observability, RegistryAndReportAreDeterministic) {
  auto run = [](std::uint64_t seed) {
    armci::WorldConfig cfg;
    cfg.machine.num_ranks = 4;
    cfg.machine.seed = seed;
    cfg.machine.obs.links = true;
    armci::World world(cfg);
    world.spmd(mixed_workload);
    return armci::render_json_report(world).dump();
  };
  const std::string a = run(42);
  EXPECT_EQ(a, run(42)) << "same seed must dump byte-identical reports";
  // A different seed may move timings but not the metric schema.
  const obs::Json ja = obs::Json::parse(a);
  const obs::Json jb = obs::Json::parse(run(7));
  ASSERT_EQ(ja.at("metrics").size(), jb.at("metrics").size());
  for (std::size_t i = 0; i < ja.at("metrics").size(); ++i) {
    EXPECT_EQ(ja.at("metrics")[i].at("name").as_string(),
              jb.at("metrics")[i].at("name").as_string());
  }
}

TEST(Observability, RecordingNeverChangesVirtualTime) {
  auto elapsed = [](bool observe) {
    armci::WorldConfig cfg;
    cfg.machine.num_ranks = 4;
    if (observe) {
      cfg.machine.trace_json_path = "/tmp/pgasq_obs_identity.json";
      cfg.machine.obs.links = true;
    }
    armci::World world(cfg);
    world.spmd(mixed_workload);
    return world.elapsed();
  };
  EXPECT_EQ(elapsed(false), elapsed(true));
  std::remove("/tmp/pgasq_obs_identity.json");
}

TEST(Observability, TruncationSurfacesInReport) {
  const std::string path = "/tmp/pgasq_obs_trunc.json";
  armci::WorldConfig cfg = traced_config(path);
  cfg.machine.trace_max_events = 32;  // far below what the run emits
  armci::World world(cfg);
  world.spmd(mixed_workload);
  EXPECT_TRUE(world.machine().trace()->truncated());
  EXPECT_EQ(world.machine().trace()->event_count(), 32u);
  const std::string report = armci::render_report(world);
  EXPECT_NE(report.find("trace truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Observability, HeatmapRendersHotLinks) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 8;
  cfg.machine.ranks_per_node = 1;
  cfg.machine.network_model = "contention";
  cfg.machine.obs.links = true;
  armci::World world(cfg);
  world.spmd(mixed_workload);
  const std::string hm = world.machine().link_usage()->heatmap(
      1.0 / world.machine().params().g_ns_per_byte, 8);
  EXPECT_NE(hm.find("link utilization"), std::string::npos);
  // The report embeds the same heatmap.
  const std::string report = armci::render_report(world);
  EXPECT_NE(report.find("link utilization"), std::string::npos);
}

TEST(Observability, RankSamplingMutesUnsampledTracksAndPrunesFlows) {
  const std::string path = "/tmp/pgasq_obs_sampled.json";
  std::remove(path.c_str());
  armci::WorldConfig cfg = traced_config(path);
  cfg.machine.num_ranks = 8;
  cfg.machine.trace_sample_ranks = 2;  // stride 4 -> ranks {0, 4}
  armci::World world(cfg);
  world.spmd(mixed_workload);
  const sim::TraceRecorder* tr = world.machine().trace();
  ASSERT_NE(tr, nullptr);
  EXPECT_TRUE(tr->sampling());
  // Deterministic stride subset, rank 0 always in it.
  EXPECT_TRUE(world.machine().rank_traced(0));
  EXPECT_TRUE(world.machine().rank_traced(4));
  EXPECT_FALSE(world.machine().rank_traced(1));
  EXPECT_FALSE(world.machine().rank_traced(7));

  const obs::Json doc = load_json(path);
  const obs::Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // tid -> fiber name from the thread_name metadata rows.
  std::map<std::uint64_t, std::string> names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& ev = events[i];
    if (ev.at("ph").as_string() == "M") {
      names[ev.at("tid").as_uint()] = ev.at("args").at("name").as_string();
    }
  }
  // Every recorded rank-tagged event sits on a sampled rank's track,
  // and every flow continuation has a recorded start (muted-source
  // arrows are pruned so the trace still validates).
  std::set<std::uint64_t> started;
  std::size_t rank_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& ev = events[i];
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") continue;
    const std::string& track = names[ev.at("tid").as_uint()];
    const std::size_t pos = track.rfind("rank");
    if (pos != std::string::npos) {
      int r = 0;
      bool digits = false;
      for (std::size_t k = pos + 4; k < track.size() && std::isdigit(
               static_cast<unsigned char>(track[k])); ++k) {
        r = r * 10 + (track[k] - '0');
        digits = true;
      }
      if (digits) {
        ++rank_events;
        EXPECT_TRUE(world.machine().rank_traced(r))
            << "event on muted track '" << track << "'";
      }
    }
    if (ph == "s") started.insert(ev.at("id").as_uint());
    if (ph == "t" || ph == "f") {
      EXPECT_TRUE(started.count(ev.at("id").as_uint()))
          << "orphan flow continuation on '" << track << "'";
    }
  }
  EXPECT_GT(rank_events, 0u) << "sampled ranks recorded nothing";

  // The human report and the JSON report both flag the sampling.
  const std::string report = armci::render_report(world);
  EXPECT_NE(report.find("sampled"), std::string::npos);
  EXPECT_NE(report.find("trace.sample_ranks=2"), std::string::npos);

  // Sampling strictly shrinks the event stream vs. a full trace.
  armci::WorldConfig full = traced_config(path);
  full.machine.num_ranks = 8;
  armci::World world_full(full);
  world_full.spmd(mixed_workload);
  EXPECT_LT(tr->event_count(), world_full.machine().trace()->event_count());
  EXPECT_FALSE(world_full.machine().trace()->sampling());
  std::remove(path.c_str());
}

TEST(Observability, ConfigNamespacesRejectTypos) {
  pami::MachineConfig mc;
  EXPECT_THROW(pami::configure_observability(
                   cfg_of({{"trace.json_pth", "/tmp/x.json"}}), mc),
               Error);
  EXPECT_THROW(pami::configure_observability(cfg_of({{"obs.lnks", "1"}}), mc),
               Error);
  EXPECT_THROW(armci::json_report_path_from_config(
                   cfg_of({{"report.jsonpath", "/tmp/x.json"}})),
               Error);
  pami::configure_observability(cfg_of({{"trace.json_path", "/tmp/x.json"},
                                        {"trace.max_events", "64"},
                                        {"trace.sample_ranks", "2"},
                                        {"obs.links", "1"},
                                        {"obs.link_bucket_us", "10"}}),
                                mc);
  EXPECT_EQ(mc.trace_json_path, "/tmp/x.json");
  EXPECT_EQ(mc.trace_max_events, 64u);
  EXPECT_EQ(mc.trace_sample_ranks, 2);
  EXPECT_TRUE(mc.obs.links);
  EXPECT_EQ(mc.obs.link_bucket, from_us(10));
  EXPECT_EQ(armci::json_report_path_from_config(
                cfg_of({{"report.json_path", "/tmp/r.json"}})),
            "/tmp/r.json");
}

}  // namespace
}  // namespace pgasq
