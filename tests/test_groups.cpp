// Process groups (src/grp): split/create membership and translation at
// awkward (prime) world sizes, nested splits, non-member rejection,
// group-collective correctness — including byte-identity under a lossy
// fabric — the node/leaders canonical groups, the hierarchical
// two-level schedules built on them, the pipelined segmented
// broadcast, and group consistency across a fail-stop shrink.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "fault/fault.hpp"
#include "ft/liveness.hpp"
#include "ft/recovery.hpp"
#include "ga/collectives.hpp"
#include "grp/group.hpp"

namespace pgasq::grp {
namespace {

using CollOpts = std::vector<std::pair<std::string, std::string>>;

armci::WorldConfig make_cfg(int ranks, int per_node = 1, CollOpts coll = {}) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.machine.ranks_per_node = per_node;
  cfg.armci.coll = std::move(coll);
  return cfg;
}

// ---------------------------------------------------------------------------
// Split membership, rank translation, and scoped collectives at prime
// world sizes (no power-of-two shortcuts can hide indexing bugs).

class GroupSplitPrime : public ::testing::TestWithParam<int> {};

TEST_P(GroupSplitPrime, ColorsPartitionAndTranslateBothWays) {
  const int p = GetParam();
  armci::World world(make_cfg(p));
  world.spmd([p](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    const int me = comm.rank();
    const int color = me % 3;
    // Reverse key ordering inside each color: members must be sorted
    // by key, so group rank order inverts world rank order.
    auto g = reg.split(color, -me);
    ASSERT_TRUE(g->is_member());
    std::vector<int> expect;
    for (int r = p - 1; r >= 0; --r) {
      if (r % 3 == color) expect.push_back(r);
    }
    EXPECT_EQ(g->members(), expect);
    EXPECT_EQ(g->size(), static_cast<int>(expect.size()));
    for (int gr = 0; gr < g->size(); ++gr) {
      EXPECT_EQ(g->world_rank(gr), expect[static_cast<std::size_t>(gr)]);
      EXPECT_EQ(g->group_rank_of(expect[static_cast<std::size_t>(gr)]), gr);
    }
    const int other_color = color == 0 ? 1 : 0;  // rank `other_color` itself
    EXPECT_EQ(g->group_rank_of(other_color), -1)
        << "a different color must not translate";
    EXPECT_EQ(g->world_rank(g->rank()), me);

    // The group allreduce sums ONLY the members' contributions.
    double x = me + 1.0;
    g->allreduce_sum(&x, 1);
    double want = 0.0;
    for (const int r : expect) want += r + 1.0;
    EXPECT_DOUBLE_EQ(x, want);

    // And a group broadcast from the last group rank.
    std::vector<std::byte> buf(513, std::byte{0});
    const int root = g->size() - 1;
    if (g->rank() == root) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<std::byte>(i * 3 + 1);
      }
    }
    g->broadcast(buf.data(), buf.size(), root);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], static_cast<std::byte>(i * 3 + 1)) << "byte " << i;
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(PrimeWorlds, GroupSplitPrime, ::testing::Values(7, 13));

TEST(GroupSplit, ColorlessRanksGetNonMemberHandles) {
  armci::World world(make_cfg(7));
  world.spmd([](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    const int me = comm.rank();
    // Odd ranks opt out entirely.
    auto g = reg.split(me % 2 == 0 ? 0 : -1, me);
    if (me % 2 == 0) {
      ASSERT_TRUE(g->is_member());
      EXPECT_EQ(g->size(), 4);
      double x = 1.0;
      g->allreduce_sum(&x, 1);
      EXPECT_DOUBLE_EQ(x, 4.0);
    } else {
      EXPECT_FALSE(g->is_member());
      EXPECT_EQ(g->rank(), -1);
      EXPECT_EQ(g->size(), 0);
    }
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Nested splits: quarter the world by splitting each half again. Group
// ids are agreed collectively, so mismatched call sites must abort.

TEST(GroupSplit, NestedSplitsQuarterTheWorld) {
  const int p = 13;
  armci::World world(make_cfg(p));
  world.spmd([p](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    const int me = comm.rank();
    auto half = reg.split(me % 2, me);
    auto quarter = half->split(me % 4 < 2 ? 0 : 1, me);
    ASSERT_TRUE(quarter->is_member());
    std::vector<int> expect;
    for (int r = 0; r < p; ++r) {
      if (r % 2 == me % 2 && (r % 4 < 2) == (me % 4 < 2)) expect.push_back(r);
    }
    EXPECT_EQ(quarter->members(), expect);
    // Sum of group ranks over the quarter, via the ga wrapper.
    double x = quarter->rank();
    ga::gop_sum(comm, &x, 1, quarter.get());
    const int n = quarter->size();
    EXPECT_DOUBLE_EQ(x, n * (n - 1) / 2.0);
    comm.barrier();
  });
}

TEST(GroupSplit, DivergedCallSitesAbortLoudly) {
  armci::World world(make_cfg(4));
  EXPECT_THROW(world.spmd([](armci::Comm& comm) {
                 auto& reg = GroupRegistry::of(comm);
                 // Rank 0 passes a different member list: the paired
                 // agreement allgather sees diverged digests and every
                 // rank aborts instead of building skewed groups.
                 if (comm.rank() == 0) {
                   reg.create({0, 1}, "skew");
                 } else {
                   reg.create({0, 2}, "skew");
                 }
                 comm.barrier();
               }),
               Error);
}

// ---------------------------------------------------------------------------
// Non-member collective calls are rejected with a descriptive error.

TEST(GroupErrors, NonMemberCollectiveIsRejected) {
  armci::World world(make_cfg(5));
  world.spmd([](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    const int me = comm.rank();
    auto g = reg.create({0, 2}, "pair");
    if (me != 0 && me != 2) {
      try {
        g->barrier();
        FAIL() << "non-member barrier did not throw";
      } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("not a member"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("pair"), std::string::npos)
            << e.what();
      }
      // Translation still works on a non-member handle.
      EXPECT_EQ(g->world_rank(1), 2);
      EXPECT_EQ(g->group_rank_of(2), 1);
      EXPECT_EQ(g->group_rank_of(1), -1);
    } else {
      EXPECT_EQ(g->label(), "pair");
      g->barrier();
    }
    comm.barrier();
  });
}

TEST(GroupErrors, CreateValidatesMembers) {
  armci::World world(make_cfg(3));
  EXPECT_THROW(world.spmd([](armci::Comm& comm) {
                 GroupRegistry::of(comm).create({0, 0, 1}, "dup");
               }),
               Error);
  armci::World world2(make_cfg(3));
  EXPECT_THROW(world2.spmd([](armci::Comm& comm) {
                 GroupRegistry::of(comm).create({0, 7}, "ghost");
               }),
               Error);
}

// ---------------------------------------------------------------------------
// Canonical node / leaders groups from the ABCDET mapping.

TEST(GroupCanonical, NodeAndLeaderGroupsMatchTheMapping) {
  // 16 ranks, 4 per node -> 4 nodes.
  armci::World world(make_cfg(16, 4));
  world.spmd([](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    const int me = comm.rank();
    const int my_node = me / 4;

    auto node = reg.node_group();
    ASSERT_TRUE(node->is_member());
    EXPECT_EQ(node->label(), "node");
    std::vector<int> expect_node{my_node * 4, my_node * 4 + 1, my_node * 4 + 2,
                                 my_node * 4 + 3};
    EXPECT_EQ(node->members(), expect_node);
    EXPECT_EQ(node->rank(), me % 4);

    auto leaders = reg.leaders_group();
    EXPECT_EQ(leaders->label(), "leaders");
    EXPECT_EQ(leaders->members(), (std::vector<int>{0, 4, 8, 12}));
    EXPECT_EQ(leaders->is_member(), me % 4 == 0);
    if (leaders->is_member()) EXPECT_EQ(leaders->rank(), my_node);

    // Cached: asking again returns the same group.
    EXPECT_EQ(reg.node_group().get(), node.get());

    // A node-scoped reduction sums exactly the node's ranks.
    double x = me;
    node->allreduce_sum(&x, 1);
    EXPECT_DOUBLE_EQ(x, 4.0 * (my_node * 4) + 6.0);
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Hierarchical two-level schedules: correctness of every op carried by
// Algo::kHier, on a multi-node multi-slot machine.

TEST(GroupHier, HierSchedulesProduceCorrectValues) {
  CollOpts force;
  for (const char* op : {"barrier", "broadcast", "reduce", "allreduce",
                         "allgather"}) {
    force.emplace_back(std::string("algo.") + op, "hier");
  }
  // 16 ranks, 8 per node -> 2 nodes; root on a non-leader slot.
  armci::World world(make_cfg(16, 8, force));
  world.spmd([](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    const int me = comm.rank();
    const int p = comm.nprocs();
    const int root = 3;

    engine.barrier();

    std::vector<std::byte> b(100000, std::byte{0});
    if (me == root) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<std::byte>(i * 7 + 3);
      }
    }
    engine.broadcast(b.data(), b.size(), root);
    for (std::size_t i = 0; i < b.size(); ++i) {
      ASSERT_EQ(b[i], static_cast<std::byte>(i * 7 + 3)) << "byte " << i;
    }

    std::vector<double> r(33);
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] = 0.25 * (me + 1) + static_cast<double>(i);
    }
    engine.reduce_sum(r.data(), r.size(), root);
    if (me == root) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        EXPECT_NEAR(r[i], 0.25 * p * (p + 1) / 2.0 + static_cast<double>(i) * p,
                    1e-9)
            << "element " << i;
      }
    }

    std::vector<double> a(19);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = (me + 1) * (static_cast<double>(i) + 0.5);
    }
    engine.allreduce_sum(a.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], p * (p + 1) / 2.0 * (static_cast<double>(i) + 0.5),
                  1e-9)
          << "element " << i;
    }

    constexpr std::size_t kBlk = 48;
    std::vector<std::byte> gin(kBlk), gout(kBlk * 16);
    for (std::size_t i = 0; i < kBlk; ++i) {
      gin[i] = static_cast<std::byte>(me * 31 + static_cast<int>(i));
    }
    engine.allgather(gin.data(), kBlk, gout.data());
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < kBlk; ++i) {
        ASSERT_EQ(gout[static_cast<std::size_t>(src) * kBlk + i],
                  static_cast<std::byte>(src * 31 + static_cast<int>(i)))
            << "block " << src << " byte " << i;
      }
    }

    engine.barrier();
  });
  // The hierarchy's internal groups show up in the per-group stats.
  const std::string report = armci::render_report(world, armci::ReportOptions{});
  EXPECT_NE(report.find("hier-node"), std::string::npos);
  EXPECT_NE(report.find("hier-leaders"), std::string::npos);
}

TEST(GroupHier, SelectionPrefersHierOnWideNodes) {
  // hw off, 8 ranks per node: the two-level schedules win the software
  // path for the combine/replicate ops; alltoall never goes hier.
  armci::World world(make_cfg(16, 8, {{"hw", "0"}}));
  world.spmd([](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    EXPECT_EQ(engine.algo_for(coll::Op::kBroadcast, 1 << 16), coll::Algo::kHier);
    EXPECT_EQ(engine.algo_for(coll::Op::kAllreduce, 1 << 16), coll::Algo::kHier);
    EXPECT_EQ(engine.algo_for(coll::Op::kAllgather, 1 << 10), coll::Algo::kHier);
    EXPECT_NE(engine.algo_for(coll::Op::kAlltoall, 1 << 10), coll::Algo::kHier);
    engine.barrier();
  });
}

TEST(GroupHier, NarrowNodesKeepFlatSchedules) {
  // ppn = 2 < hier_min_ppn default (8): flat software schedules stay.
  armci::World world(make_cfg(8, 2, {{"hw", "0"}}));
  world.spmd([](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    EXPECT_NE(engine.algo_for(coll::Op::kAllreduce, 1 << 16), coll::Algo::kHier);
    engine.barrier();
  });
  // ...unless the threshold is lowered.
  armci::World world2(make_cfg(8, 2, {{"hw", "0"}, {"hier_min_ppn", "2"}}));
  world2.spmd([](armci::Comm& comm) {
    auto& engine = coll::CollEngine::of(comm);
    EXPECT_EQ(engine.algo_for(coll::Op::kAllreduce, 1 << 16), coll::Algo::kHier);
    engine.barrier();
  });
}

// ---------------------------------------------------------------------------
// Pipelined segmented broadcast (coll.bcast_segment_bytes): the ring
// schedule must deliver identical bytes with any segment size.

TEST(GroupPipeline, SegmentedRingBroadcastDeliversIdenticalBytes) {
  for (const char* seg : {"0", "1024", "4096", "1000000"}) {
    armci::World world(make_cfg(8, 1,
                                {{"algo.broadcast", "torus-ring"},
                                 {"bcast_segment_bytes", seg}}));
    world.spmd([](armci::Comm& comm) {
      auto& engine = coll::CollEngine::of(comm);
      std::vector<std::byte> buf(50000, std::byte{0});
      if (comm.rank() == 2) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<std::byte>(i * 13 + 7);
        }
      }
      engine.broadcast(buf.data(), buf.size(), 2);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<std::byte>(i * 13 + 7)) << "byte " << i;
      }
      engine.barrier();
    });
  }
}

// ---------------------------------------------------------------------------
// Byte-identity of group collectives under a lossy fabric: the
// retransmit protocol must make group schedules fault-transparent.

std::vector<std::uint64_t> group_allreduce_bits(fault::FaultPlan plan) {
  armci::WorldConfig cfg = make_cfg(8, 2);
  cfg.machine.fault = plan;
  armci::World world(cfg);
  std::vector<std::uint64_t> bits(8, 0);
  world.spmd([&](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    auto g = reg.split(comm.rank() % 2, comm.rank());
    double x = 0.1 * (comm.rank() + 1) + 1e-13 / (comm.rank() + 1);
    g->allreduce_sum(&x, 1);
    std::memcpy(&bits[static_cast<std::size_t>(comm.rank())], &x, sizeof(x));
    comm.barrier();
  });
  return bits;
}

TEST(GroupFaults, LossyFabricLeavesGroupResultsByteIdentical) {
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.drop_prob = 0.01;
  ASSERT_TRUE(plan.enabled());
  const auto clean = group_allreduce_bits({});
  const auto lossy = group_allreduce_bits(plan);
  EXPECT_EQ(clean, lossy);
}

// ---------------------------------------------------------------------------
// Fail-stop shrink: the canonical groups are rebuilt over the
// survivors, user groups turn stale and reject collectives.

TEST(GroupShrink, RebuildKeepsNodeAndLeaderGroupsConsistent) {
  armci::WorldConfig cfg = make_cfg(8, 2);  // 4 nodes x 2 slots
  // Late enough that group setup (collective allocations) completes.
  cfg.machine.fault.node_fails.push_back({/*node=*/1, from_us(10000)});
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    auto& reg = GroupRegistry::of(comm);
    auto node0 = reg.node_group();
    auto lead0 = reg.leaders_group();
    auto user = reg.split(comm.rank() % 2, comm.rank());
    ft::Runtime rt(comm, ft::RuntimeConfig{}, std::vector<ga::GlobalArray*>{});
    ASSERT_TRUE(rt.enabled());

    bool recovered = false;
    for (int iter = 0; iter < 500 && !recovered; ++iter) {
      try {
        comm.compute(from_us(100));
        double x = 1.0;
        coll::CollEngine::of(comm).allreduce_sum(&x, 1);
      } catch (const ft::PeerDeadError&) {
        if (!rt.recover()) return;  // this rank's node died
        recovered = true;
      }
    }
    ASSERT_TRUE(recovered) << "death was never detected";

    // Old handles are stale and reject ops with a clear error.
    EXPECT_TRUE(node0->stale());
    EXPECT_TRUE(lead0->stale());
    EXPECT_TRUE(user->stale());
    try {
      user->barrier();
      FAIL() << "stale group op did not throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("stale"), std::string::npos)
          << e.what();
    }

    // The canonical groups were rebuilt over the survivors (node 1 ==
    // ranks 2,3 is gone).
    const std::vector<int> live = reg.live();
    EXPECT_EQ(live, (std::vector<int>{0, 1, 4, 5, 6, 7}));
    auto node1 = reg.node_group();
    auto lead1 = reg.leaders_group();
    EXPECT_NE(node1.get(), node0.get());
    EXPECT_FALSE(node1->stale());
    const int my_node = comm.rank() / 2;
    EXPECT_EQ(node1->members(),
              (std::vector<int>{my_node * 2, my_node * 2 + 1}));
    EXPECT_EQ(lead1->members(), (std::vector<int>{0, 4, 6}));
    EXPECT_EQ(lead1->is_member(), comm.rank() % 2 == 0);

    // And they work: a node-scoped sum over the survivor clique.
    double x = comm.rank();
    node1->allreduce_sum(&x, 1);
    EXPECT_DOUBLE_EQ(x, my_node * 2 + my_node * 2 + 1.0);

    // Survivors can recreate user groups collectively.
    auto user2 = reg.split(comm.rank() % 2, comm.rank());
    ASSERT_TRUE(user2->is_member());
    double y = 1.0;
    user2->allreduce_sum(&y, 1);
    EXPECT_DOUBLE_EQ(y, static_cast<double>(user2->size()));
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::grp
