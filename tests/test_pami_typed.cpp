// Direct tests of the PAMI typed (gather/scatter) RDMA operations and
// the non-RDMA put/get primitives at the PAMI level.
#include <gtest/gtest.h>

#include <cstring>

#include "pami/machine.hpp"

namespace pgasq::pami {
namespace {

MachineConfig two_ranks() {
  MachineConfig cfg;
  cfg.num_ranks = 2;
  return cfg;
}

void run_pair(MachineConfig cfg, std::function<void(Process&)> rank0,
              std::function<void(Process&)> rank1) {
  Machine machine(cfg);
  machine.run([&](Process& p) {
    p.create_client();
    p.create_context();
    (p.rank() == 0 ? rank0 : rank1)(p);
  });
}

TEST(Typed, RputTypedScattersChunks) {
  std::vector<std::byte> local(256);
  std::vector<std::byte> remote(512, std::byte{0});
  for (std::size_t i = 0; i < local.size(); ++i) {
    local[i] = static_cast<std::byte>(i % 251);
  }
  run_pair(
      two_ranks(),
      [&](Process& p) {
        auto lmr = p.create_memregion(local.data(), local.size());
        MemoryRegion rmr{1, remote.data(), remote.size(), 5};
        std::vector<TypedChunk> chunks;
        // 4 chunks of 32B: local contiguous, remote strided by 96.
        for (std::uint64_t i = 0; i < 4; ++i) {
          chunks.push_back({i * 32, i * 96, 32});
        }
        bool done = false;
        p.context(0).rput_typed(*lmr, rmr, chunks, [&] { done = true; });
        p.context(0).advance_until([&] { return done; });
        p.busy(from_us(20));  // let the data land
        for (std::uint64_t i = 0; i < 4; ++i) {
          for (std::uint64_t b = 0; b < 32; ++b) {
            ASSERT_EQ(remote[i * 96 + b], static_cast<std::byte>((i * 32 + b) % 251));
          }
          if (i < 3) {
            EXPECT_EQ(remote[i * 96 + 32], std::byte{0});  // gap
          }
        }
      },
      [](Process& p) { p.busy(from_us(100)); });
}

TEST(Typed, RgetTypedGathersChunks) {
  std::vector<std::byte> remote(512);
  std::vector<std::byte> local(256, std::byte{0});
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>((i * 7) % 251);
  }
  run_pair(
      two_ranks(),
      [&](Process& p) {
        auto lmr = p.create_memregion(local.data(), local.size());
        MemoryRegion rmr{1, remote.data(), remote.size(), 6};
        std::vector<TypedChunk> chunks;
        for (std::uint64_t i = 0; i < 8; ++i) {
          chunks.push_back({i * 16, i * 64, 16});
        }
        bool done = false;
        p.context(0).rget_typed(*lmr, rmr, chunks, [&] { done = true; });
        p.context(0).advance_until([&] { return done; });
        for (std::uint64_t i = 0; i < 8; ++i) {
          for (std::uint64_t b = 0; b < 16; ++b) {
            ASSERT_EQ(local[i * 16 + b],
                      static_cast<std::byte>(((i * 64 + b) * 7) % 251));
          }
        }
      },
      [](Process& p) { p.busy(from_us(100)); });
}

TEST(Typed, TypedCostsMoreThanContiguousSameBytes) {
  // The typed wire factor + per-element descriptor cost must show up.
  Time typed_time = 0;
  Time contig_time = 0;
  std::vector<std::byte> local(1 << 16);
  std::vector<std::byte> remote(1 << 17);
  run_pair(
      two_ranks(),
      [&](Process& p) {
        auto lmr = p.create_memregion(local.data(), local.size());
        MemoryRegion rmr{1, remote.data(), remote.size(), 7};
        std::vector<TypedChunk> chunks;
        for (std::uint64_t i = 0; i < 256; ++i) chunks.push_back({i * 256, i * 512, 256});
        bool done = false;
        Time t0 = p.now();
        p.context(0).rget_typed(*lmr, rmr, chunks, [&] { done = true; });
        p.context(0).advance_until([&] { return done; });
        typed_time = p.now() - t0;
        done = false;
        t0 = p.now();
        p.context(0).rget(*lmr, 0, rmr, 0, 1 << 16, [&] { done = true; });
        p.context(0).advance_until([&] { return done; });
        contig_time = p.now() - t0;
      },
      [](Process& p) { p.busy(from_ms(1)); });
  EXPECT_GT(typed_time, contig_time);
  EXPECT_LT(typed_time, 2 * contig_time) << "typed should stay within ~wire-factor";
}

TEST(NonRdma, PutDepositsOnTargetAdvance) {
  std::vector<std::byte> local(128, std::byte{0x3C});
  std::vector<std::byte> remote(128, std::byte{0});
  run_pair(
      two_ranks(),
      [&](Process& p) {
        bool local_done = false;
        bool remote_done = false;
        p.context(0).put(Endpoint{1, 0}, local.data(), remote.data(), 128,
                         [&] { local_done = true; }, [&] { remote_done = true; });
        p.context(0).advance_until([&] { return local_done; });
        EXPECT_EQ(remote[0], std::byte{0}) << "no deposit before target advance";
        p.context(0).advance_until([&] { return remote_done; });
        EXPECT_EQ(remote[64], std::byte{0x3C});
      },
      [&](Process& p) {
        p.busy(from_us(50));
        p.context(0).advance();  // deposit happens here
        p.busy(from_us(50));
      });
}

}  // namespace
}  // namespace pgasq::pami
