// Overload control (src/flow): credit-window backpressure at prime
// rank counts, server-side deadline shedding with the typed error
// hierarchy, deterministic jittered backoff, zero-cost-off identity,
// open-loop shed determinism, and config typo rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/comm.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "flow/flow.hpp"
#include "kvs/kvs.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace pgasq::armci {
namespace {

WorldConfig world_of(int ranks) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  return cfg;
}

// jitter() is the anti-storm primitive: it must be a pure function of
// (seed, rank, attempt), stay inside [1 - s, 1 + s), give distinct
// ranks distinct draws (the desynchronization property), and collapse
// to exactly 1.0 when the spread is off.
TEST(Flow, JitterIsDeterministicBoundedAndDesynchronizing) {
  const double s = 0.5;
  std::set<double> distinct;
  for (int rank = 0; rank < 16; ++rank) {
    for (std::uint64_t attempt = 0; attempt < 8; ++attempt) {
      const double a = flow::jitter(42, rank, attempt, s);
      EXPECT_EQ(a, flow::jitter(42, rank, attempt, s));
      EXPECT_GE(a, 1.0 - s);
      EXPECT_LT(a, 1.0 + s);
      if (attempt == 3) distinct.insert(a);
    }
  }
  // 16 ranks at the same attempt must not share a factor — a shared
  // draw is exactly the synchronized retry storm jitter exists to break.
  EXPECT_EQ(distinct.size(), 16u);
  EXPECT_EQ(flow::jitter(42, 3, 1, 0.0), 1.0);
  EXPECT_EQ(flow::jitter(42, 3, 1, -1.0), 1.0);
}

// RetryBudget: backoffs grow exponentially under the cap and within
// the jitter envelope, allow() flips after the budget is spent, and a
// zero budget reproduces the historical free spin (no backoff at all).
TEST(Flow, RetryBudgetBacksOffThenExhausts) {
  flow::FlowConfig cfg;
  cfg.retry_budget = 4;
  cfg.retry_backoff_us = 2.0;
  cfg.retry_max_backoff_us = 8.0;
  flow::RetryBudget b(cfg, /*rank=*/3, /*op_id=*/17);
  double prev_cap = 0.0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    ASSERT_TRUE(b.allow()) << "attempt " << attempt;
    const double cap =
        std::min(2.0 * static_cast<double>(1u << attempt), 8.0);
    const double us = to_s(b.next_backoff()) * 1e6;
    EXPECT_GE(us, 0.5 * cap) << "attempt " << attempt;
    EXPECT_LT(us, 1.5 * cap) << "attempt " << attempt;
    EXPECT_GE(cap, prev_cap);
    prev_cap = cap;
  }
  EXPECT_FALSE(b.allow());
  EXPECT_EQ(b.used(), 4u);

  flow::FlowConfig off;
  off.retry_budget = 0;
  flow::RetryBudget free_spin(off, 0, 0);
  EXPECT_TRUE(free_spin.allow());
  EXPECT_EQ(free_spin.next_backoff(), 0);
  EXPECT_TRUE(free_spin.allow());
}

// A credit window of 1 on each (src,dst) pair must visibly stall a
// burst of back-to-back transfers: each rank fires four non-blocking
// puts at its neighbour, so three of them find the window full. Prime
// rank counts keep the pair matrix irregular.
TEST(Flow, CreditWindowBackpressuresAtPrimeRanks) {
  for (const int n : {7, 13}) {
    WorldConfig cfg = world_of(n);
    cfg.machine.flow.configured = true;
    cfg.machine.flow.credits = 1;
    World world(cfg);
    world.spmd([n](Comm& comm) {
      constexpr std::size_t kBytes = 32 * 1024;
      auto& mem = comm.malloc_collective(4 * kBytes);
      std::vector<std::byte> src(4 * kBytes, std::byte{0x5a});
      const RankId dst = (comm.rank() + 1) % n;
      Handle h[4];
      for (int i = 0; i < 4; ++i) {
        comm.nb_put(src.data() + static_cast<std::size_t>(i) * kBytes,
                    mem.at(dst, static_cast<std::size_t>(i) * kBytes), kBytes,
                    h[i]);
      }
      for (auto& hh : h) comm.wait(hh);
      comm.barrier();
    });
    const flow::Controller* fc = world.machine().flow();
    ASSERT_NE(fc, nullptr) << n << " ranks";
    EXPECT_GT(fc->stats().credit_stalls, 0u) << n << " ranks";
    EXPECT_GT(fc->stats().credit_stall_time, 0) << n << " ranks";
    EXPECT_GT(fc->stats().queue_depth.total(), 0u) << n << " ranks";
    // The stalls surface in the text report's overload-control table.
    const std::string text = render_report(world);
    EXPECT_NE(text.find("overload control (flow)"), std::string::npos);
  }
}

// A request whose absolute deadline has already passed when the server
// dequeues it is shed before servicing; the blocking client call
// throws flow::DeadlineError, which IS-A FaultError so existing
// guarded recovery paths catch it without new plumbing. Clearing the
// deadline restores normal service on the same comm.
TEST(Flow, DeadlineShedsServerSideWithTypedError) {
  WorldConfig cfg = world_of(2);
  cfg.machine.flow.configured = true;
  cfg.machine.flow.deadline_us = 1000.0;
  World world(cfg);
  std::vector<char> typed(2, 0), as_fault(2, 0);
  world.spmd([&](Comm& comm) {
    auto& mem = comm.malloc_collective(64);
    comm.barrier();
    if (comm.rank() == 0) {
      const auto me = static_cast<std::size_t>(comm.rank());
      comm.set_op_deadline(Time{1});  // 1 ps: expired long before dequeue
      try {
        comm.fetch_add(mem.at(1), 5);
      } catch (const flow::DeadlineError&) {
        typed[me] = 1;
      }
      comm.set_op_deadline(Time{1});
      try {
        comm.fetch_add(mem.at(1), 5);
      } catch (const FaultError&) {  // the base class must catch it too
        as_fault[me] = 1;
      }
      comm.set_op_deadline(0);
      EXPECT_EQ(comm.fetch_add(mem.at(1), 5), 0);  // service restored
      EXPECT_EQ(comm.fetch_add(mem.at(1), 0), 5);
    }
    comm.barrier();
  });
  EXPECT_EQ(typed[0], 1);
  EXPECT_EQ(as_fault[0], 1);
  ASSERT_NE(world.machine().flow(), nullptr);
  EXPECT_GE(world.machine().flow()->stats().expired_server, 2u);
}

// Zero-cost-off: a run with flow.* keys present but no hook enabled
// (no controller is built), and a run with an enabled-but-never-
// binding credit window, must both reproduce the flow-unset workload
// bit for bit — shard CRCs, op counts, and virtual time.
TEST(Flow, OffAndNonBindingRunsAreByteIdenticalToUnset) {
  kvs::KvConfig kc;
  kc.keys = 256;
  kc.requests = 24;
  kc.get_ratio = 0.5;
  kc.faa_ratio = 0.2;

  auto run = [&](const flow::FlowConfig& fl, std::uint64_t* stalls) {
    WorldConfig cfg = world_of(7);
    cfg.machine.flow = fl;
    World world(cfg);
    const kvs::KvResult r = kvs::run_workload(world, kc);
    if (stalls != nullptr) {
      const flow::Controller* fc = world.machine().flow();
      *stalls = fc != nullptr ? fc->stats().credit_stalls : 0;
    }
    return r;
  };

  const kvs::KvResult unset = run(flow::FlowConfig{}, nullptr);

  flow::FlowConfig parsed_only;  // e.g. just flow.seed in the config
  parsed_only.configured = true;
  const kvs::KvResult off = run(parsed_only, nullptr);

  flow::FlowConfig huge;  // controller built, window can never fill
  huge.configured = true;
  huge.credits = 1 << 20;
  std::uint64_t stalls = 1;
  const kvs::KvResult slack = run(huge, &stalls);

  for (const kvs::KvResult* r : {&off, &slack}) {
    EXPECT_EQ(unset.shard_crcs, r->shard_crcs);
    EXPECT_EQ(unset.acked_ops, r->acked_ops);
    EXPECT_EQ(unset.elapsed_s, r->elapsed_s);
    EXPECT_EQ(unset.total.get_lat.quantile(0.99),
              r->total.get_lat.quantile(0.99));
  }
  EXPECT_EQ(stalls, 0u) << "a never-binding window must never stall";
}

// The open-loop overload path is a pure function of the seed: two
// identical over-driven runs must agree on every shed/expiry decision,
// not just on aggregate throughput.
TEST(Flow, OpenLoopSheddingIsDeterministic) {
  kvs::KvConfig kc;
  kc.keys = 256;
  kc.requests = 48;
  kc.get_ratio = 0.7;
  kc.arrival_rate = 4.0e5;  // well past the ~155k/s/rank saturation
  kc.slo_us = 50.0;

  flow::FlowConfig fl;
  fl.configured = true;
  fl.deadline_us = 50.0;
  fl.admit = true;
  fl.low_prio_frac = 0.25;
  fl.retry_budget = 8;

  struct Shed {
    kvs::KvResult r;
    flow::FlowStats f;
  };
  auto run = [&] {
    WorldConfig cfg = world_of(7);
    cfg.machine.flow = fl;
    World world(cfg);
    Shed out{kvs::run_workload(world, kc), {}};
    const flow::Controller* fc = world.machine().flow();
    if (fc != nullptr) {
      out.f.expired_server = fc->stats().expired_server;
      out.f.expired_client = fc->stats().expired_client;
      out.f.shed_low_prio = fc->stats().shed_low_prio;
      out.f.shed_high_prio = fc->stats().shed_high_prio;
    }
    return out;
  };
  const Shed a = run();
  const Shed b = run();
  EXPECT_GT(a.r.total.shed_ops + a.f.expired_server + a.f.expired_client, 0u)
      << "an over-driven open loop must shed somewhere";
  EXPECT_EQ(a.r.acked_ops, b.r.acked_ops);
  EXPECT_EQ(a.r.total.shed_ops, b.r.total.shed_ops);
  EXPECT_EQ(a.r.total.expired_ops, b.r.total.expired_ops);
  EXPECT_EQ(a.r.total.deadline_errors, b.r.total.deadline_errors);
  EXPECT_EQ(a.f.expired_server, b.f.expired_server);
  EXPECT_EQ(a.f.expired_client, b.f.expired_client);
  EXPECT_EQ(a.f.shed_low_prio, b.f.shed_low_prio);
  EXPECT_EQ(a.f.shed_high_prio, b.f.shed_high_prio);
  EXPECT_EQ(a.r.elapsed_s, b.r.elapsed_s);
}

// flow./fault./kvs. overload knobs are reject_unknown-checked with
// typo suggestions, and out-of-range values fail loudly at parse time.
TEST(Flow, ConfigRejectsTyposAndBadValues) {
  auto expect_suggestion = [](const char* key, const char* value,
                              const char* suggestion, auto parse) {
    Config cfg;
    cfg.set(key, value);
    try {
      parse(cfg);
      FAIL() << key << " must be rejected";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(key), std::string::npos) << what;
      EXPECT_NE(what.find(suggestion), std::string::npos) << what;
    }
  };
  auto parse_flow = [](const Config& c) { flow::FlowConfig::from_config(c); };
  auto parse_kvs = [](const Config& c) { kvs::KvConfig::from_config(c); };
  auto parse_fault = [](const Config& c) { fault::FaultPlan::from_config(c); };
  expect_suggestion("flow.credtis", "4", "did you mean flow.credits?",
                    parse_flow);
  expect_suggestion("flow.dead_line_us", "10", "did you mean flow.deadline_us?",
                    parse_flow);
  expect_suggestion("kvs.prefil", "true", "did you mean kvs.prefill?",
                    parse_kvs);
  expect_suggestion("kvs.hedge_u", "5", "did you mean kvs.hedge_us?",
                    parse_kvs);
  expect_suggestion("fault.backoff_jiter", "0.3",
                    "did you mean fault.backoff_jitter?", parse_fault);

  Config ok;
  ok.set("flow.credits", "3");
  ok.set("flow.deadline_us", "25");
  ok.set("flow.admit", "true");
  ok.set("flow.low_prio_frac", "0.1");
  const flow::FlowConfig fl = flow::FlowConfig::from_config(ok);
  EXPECT_TRUE(fl.configured);
  EXPECT_TRUE(fl.enabled());
  EXPECT_EQ(fl.credits, 3);
  EXPECT_DOUBLE_EQ(fl.deadline_us, 25.0);
  EXPECT_TRUE(fl.admit);

  Config bad_dec;
  bad_dec.set("flow.aimd_dec", "1.5");
  EXPECT_THROW(flow::FlowConfig::from_config(bad_dec), Error);
  Config bad_jitter;
  bad_jitter.set("fault.backoff_jitter", "1.0");
  EXPECT_THROW(fault::FaultPlan::from_config(bad_jitter), Error);
}

}  // namespace
}  // namespace pgasq::armci
