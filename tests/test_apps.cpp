// The application proxies: SCF task arithmetic, workload determinism,
// and the qualitative Fig 9 / Fig 11 relationships at test scale.
#include <gtest/gtest.h>

#include "apps/counter_kernel.hpp"
#include "apps/scf.hpp"
#include "core/comm.hpp"

namespace pgasq::apps {
namespace {

armci::WorldConfig make_cfg(int ranks, armci::ProgressMode mode,
                            int contexts = 1) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.armci.progress = mode;
  cfg.armci.contexts_per_rank = contexts;
  return cfg;
}

TEST(ScfMath, TaskBlocksCoverUpperTriangleExactlyOnce) {
  const std::int64_t nblk = 9;
  const std::int64_t ntasks = nblk * (nblk + 1) / 2;
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (std::int64_t t = 0; t < ntasks; ++t) {
    const auto [bi, bj] = scf_task_blocks(t, nblk);
    EXPECT_LE(bi, bj);
    EXPECT_GE(bi, 0);
    EXPECT_LT(bj, nblk);
    EXPECT_TRUE(seen.insert({bi, bj}).second) << "duplicate task " << t;
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), ntasks);
  EXPECT_THROW(scf_task_blocks(ntasks, nblk), Error);
}

TEST(ScfMath, TasksPerIterationMatchesBlockCount) {
  ScfConfig cfg;
  cfg.nbf = 644;
  cfg.block = 7;
  const std::int64_t nblk = (644 + 6) / 7;  // 92
  EXPECT_EQ(scf_tasks_per_iteration(cfg), nblk * (nblk + 1) / 2);
}

TEST(ScfMath, TaskTimesDeterministicAndJitterBounded) {
  ScfConfig cfg;
  cfg.mean_task_compute = from_us(1000);
  cfg.jitter = 0.5;
  for (std::int64_t t = 0; t < 200; ++t) {
    const Time a = scf_task_time(cfg, 1, t);
    const Time b = scf_task_time(cfg, 1, t);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, from_us(500));
    EXPECT_LE(a, from_us(1500));
  }
  // Different iterations see different times (new integral screening).
  EXPECT_NE(scf_task_time(cfg, 0, 5), scf_task_time(cfg, 1, 5));
}

TEST(Scf, AllTasksExecutedOnceAndChecksumStableAcrossP) {
  ScfConfig scf;
  scf.nbf = 28;
  scf.block = 4;
  scf.iterations = 2;
  scf.mean_task_compute = from_us(40);
  double checksum4 = 0;
  {
    armci::World world(make_cfg(4, armci::ProgressMode::kDefault));
    const auto r = run_scf(world, scf);
    EXPECT_EQ(r.tasks_executed,
              static_cast<std::uint64_t>(2 * scf_tasks_per_iteration(scf)));
    checksum4 = r.fock_checksum;
  }
  {
    armci::World world(make_cfg(7, armci::ProgressMode::kDefault));
    const auto r = run_scf(world, scf);
    EXPECT_NEAR(r.fock_checksum, checksum4, 1e-9)
        << "Fock result must not depend on process count";
  }
}

TEST(Scf, AsyncThreadReducesWallAndCounterTime) {
  ScfConfig scf;
  scf.nbf = 40;
  scf.block = 4;
  scf.iterations = 1;
  scf.mean_task_compute = from_us(800);
  armci::World d_world(make_cfg(8, armci::ProgressMode::kDefault));
  const auto d = run_scf(d_world, scf);
  armci::World at_world(make_cfg(8, armci::ProgressMode::kAsyncThread, 2));
  const auto at = run_scf(at_world, scf);
  EXPECT_LT(at.wall_time, d.wall_time) << "AT must beat Default";
  EXPECT_LT(at.counter_time, d.counter_time / 2)
      << "counter time must collapse under AT";
  EXPECT_NEAR(d.fock_checksum, at.fock_checksum, 1e-9);
}

TEST(Scf, NoForcedFencesUnderPerRegionTracking) {
  ScfConfig scf;
  scf.nbf = 24;
  scf.block = 4;
  scf.iterations = 1;
  scf.mean_task_compute = from_us(50);
  armci::WorldConfig cfg = make_cfg(4, armci::ProgressMode::kDefault);
  cfg.armci.consistency = armci::ConsistencyMode::kPerRegion;
  armci::World world(cfg);
  const auto r = run_scf(world, scf);
  EXPECT_EQ(r.forced_fences, 0u)
      << "D reads and F accs are distinct structures (S III-E)";
}

TEST(Scf, PurificationSweepsRunAndStayDeterministic) {
  ScfConfig scf;
  scf.nbf = 24;
  scf.block = 4;
  scf.iterations = 2;
  scf.mean_task_compute = from_us(40);
  scf.purification_sweeps = 2;
  armci::World a(make_cfg(4, armci::ProgressMode::kDefault));
  const auto ra = run_scf(a, scf);
  armci::World b(make_cfg(4, armci::ProgressMode::kAsyncThread, 2));
  const auto rb = run_scf(b, scf);
  EXPECT_NEAR(ra.fock_checksum, rb.fock_checksum, 1e-9);
  EXPECT_NEAR(ra.final_energy, rb.final_energy, 1e-9);
  // Purification changes the density between iterations, so the
  // energy must differ from the no-purification run.
  ScfConfig plain = scf;
  plain.purification_sweeps = 0;
  armci::World c(make_cfg(4, armci::ProgressMode::kDefault));
  const auto rc = run_scf(c, plain);
  EXPECT_NE(ra.final_energy, rc.final_energy);
}

TEST(CounterKernel, IdleHomeComparableAcrossModes) {
  CounterKernelConfig kcfg;
  kcfg.ops_per_rank = 6;
  armci::World d(make_cfg(8, armci::ProgressMode::kDefault));
  const auto rd = run_counter_kernel(d, kcfg);
  armci::World at(make_cfg(8, armci::ProgressMode::kAsyncThread, 2));
  const auto rat = run_counter_kernel(at, kcfg);
  EXPECT_EQ(rd.final_value, 7 * 6);
  EXPECT_EQ(rat.final_value, 7 * 6);
  // Paper: D and AT comparable when home makes progress (within 2x).
  EXPECT_LT(rat.avg_latency_us, rd.avg_latency_us * 2.0);
  EXPECT_LT(rd.avg_latency_us, rat.avg_latency_us * 2.0);
}

TEST(CounterKernel, ComputingHomePunishesDefaultOnly) {
  CounterKernelConfig kcfg;
  kcfg.ops_per_rank = 6;
  kcfg.home_computes = true;
  armci::World d(make_cfg(8, armci::ProgressMode::kDefault));
  const auto rd = run_counter_kernel(d, kcfg);
  armci::World at(make_cfg(8, armci::ProgressMode::kAsyncThread, 2));
  const auto rat = run_counter_kernel(at, kcfg);
  // Default-mode latency is dominated by the 300us compute chunk.
  EXPECT_GT(rd.avg_latency_us, 100.0);
  EXPECT_LT(rat.avg_latency_us, 30.0);
}

TEST(CounterKernel, HardwareAmoFlattensLatency) {
  CounterKernelConfig kcfg;
  kcfg.ops_per_rank = 4;
  armci::WorldConfig small = make_cfg(4, armci::ProgressMode::kAsyncThread, 2);
  small.machine.params.hardware_amo = true;
  armci::WorldConfig big = make_cfg(64, armci::ProgressMode::kAsyncThread, 2);
  big.machine.params.hardware_amo = true;
  armci::World ws(small);
  armci::World wb(big);
  const double lat_small = run_counter_kernel(ws, kcfg).avg_latency_us;
  const double lat_big = run_counter_kernel(wb, kcfg).avg_latency_us;
  EXPECT_LT(lat_big, lat_small * 4.0)
      << "NIC AMO latency must grow sublinearly with p";
}

}  // namespace
}  // namespace pgasq::apps
