// Fault-injection subsystem: data must survive packet loss, CRC
// corruption and hard link failure byte-for-byte, recovery must be
// deterministic per seed, retry-budget exhaustion must escalate to a
// typed FaultError instead of hanging, and a stalled async-progress
// fiber must not cost liveness.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/comm.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "util/config.hpp"

namespace pgasq::armci {
namespace {

// 4 nodes on a 4x1x1x1x1 torus: dimension 0 has size 4, so failing a
// directed link forces a genuine 3-hop route-around (on size-2 dims
// the reverse link reaches the same neighbour for free).
WorldConfig ring4() {
  WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  cfg.machine.ranks_per_node = 1;
  cfg.machine.dims = topo::Coord5{4, 1, 1, 1, 1};
  return cfg;
}

fault::FaultPlan lossy_plan(std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.01;
  plan.corrupt_prob = 0.002;
  plan.link_faults.push_back(
      fault::LinkFaultSpec{/*node=*/0, /*dim=*/0, /*dir=*/+1,
                           /*capacity=*/0.0, /*begin=*/0, fault::kForever});
  return plan;
}

/// The fault-scenario workload: contiguous put/get/acc, a strided
/// round-trip, and a notify handshake, all crossing the faulted links.
/// Returns every byte the ranks read back, concatenated per rank.
std::vector<std::vector<std::byte>> run_workload(const WorldConfig& cfg,
                                                 CommStats* stats_out) {
  constexpr std::size_t kBytes = 2048;
  std::vector<std::vector<std::byte>> read_back(
      static_cast<std::size_t>(cfg.machine.num_ranks));
  World world(cfg);
  world.spmd([&](Comm& comm) {
    const int r = comm.rank();
    const int n = comm.nprocs();
    const int right = (r + 1) % n;
    auto& mem = comm.malloc_collective(kBytes);
    auto& acc_mem = comm.malloc_collective(sizeof(double) * 32);
    auto& grid = comm.malloc_collective(64 * 64);
    auto& flag = comm.malloc_collective(8);
    std::vector<std::byte>& out = read_back[static_cast<std::size_t>(r)];

    // Contiguous put to the right neighbour, then read our own slab
    // back (written by the left neighbour) over the wire. Several
    // rounds so a percent-level drop rate is certain to bite.
    for (std::size_t round = 0; round < 32; ++round) {
      std::vector<std::byte> buf(kBytes);
      for (std::size_t i = 0; i < kBytes; ++i) {
        buf[i] = static_cast<std::byte>(
            (i * 31 + static_cast<std::size_t>(r) * 7 + round) & 0xFF);
      }
      comm.put(buf.data(), mem.at(right), kBytes);
      comm.fence(right);
      comm.barrier();
      std::vector<std::byte> back(kBytes);
      comm.get(mem.at(r), back.data(), kBytes);
      out.insert(out.end(), back.begin(), back.end());
      comm.barrier();
    }

    // Accumulate from every rank into rank 0, then fan the sums out.
    if (r == 0) {
      auto* d = reinterpret_cast<double*>(acc_mem.local(0));
      for (int i = 0; i < 32; ++i) d[i] = 1.0;
    }
    comm.barrier();
    std::vector<double> contrib(32);
    for (int i = 0; i < 32; ++i) contrib[static_cast<std::size_t>(i)] = i + r;
    comm.acc(2.0, contrib.data(), acc_mem.at(0), 32);
    comm.fence(0);
    comm.barrier();
    std::vector<double> sums(32);
    comm.get(acc_mem.at(0), sums.data(), sizeof(double) * 32);
    const auto* sum_bytes = reinterpret_cast<const std::byte*>(sums.data());
    out.insert(out.end(), sum_bytes, sum_bytes + sizeof(double) * 32);

    // Strided 2-D patch to the right neighbour and back.
    const StridedSpec spec = StridedSpec::rect2d(/*rows=*/16, /*row_bytes=*/48,
                                                 /*src_pitch=*/64, /*dst_pitch=*/64);
    std::vector<std::byte> patch(64 * 16);
    for (std::size_t i = 0; i < patch.size(); ++i) {
      patch[i] = static_cast<std::byte>((i + static_cast<std::size_t>(r) * 13) & 0xFF);
    }
    comm.put_strided(patch.data(), grid.at(right), spec);
    comm.fence(right);
    comm.barrier();
    std::vector<std::byte> patch_back(64 * 16, std::byte{0});
    comm.get_strided(grid.at(r), patch_back.data(), spec);
    out.insert(out.end(), patch_back.begin(), patch_back.end());

    // Notify handshake: producer r writes then notifies r+1.
    const std::int64_t token = 1000 + r;
    comm.put(&token, flag.at(right), sizeof token);
    comm.notify(right);
    const int left = (r + n - 1) % n;
    comm.wait_notify(left);
    std::int64_t got = 0;
    std::memcpy(&got, flag.local(r), sizeof got);
    const auto* tok_bytes = reinterpret_cast<const std::byte*>(&got);
    out.insert(out.end(), tok_bytes, tok_bytes + sizeof got);
    comm.barrier();
  });
  if (stats_out != nullptr) *stats_out = world.total_stats();
  return read_back;
}

TEST(FaultInjection, RecoveryIsByteIdenticalToFaultFreeRun) {
  CommStats clean_stats;
  const auto clean = run_workload(ring4(), &clean_stats);
  EXPECT_EQ(clean_stats.retransmits, 0u);

  for (const std::uint64_t seed : {7ull, 1234ull}) {
    WorldConfig faulty = ring4();
    faulty.machine.fault = lossy_plan(seed);
    CommStats stats;
    const auto recovered = run_workload(faulty, &stats);
    ASSERT_EQ(recovered.size(), clean.size());
    for (std::size_t r = 0; r < clean.size(); ++r) {
      EXPECT_EQ(recovered[r], clean[r])
          << "rank " << r << " read different data under faults, seed " << seed;
    }
    // The plan guarantees losses on this much traffic; recovery must
    // actually have happened, not been dodged.
    EXPECT_GT(stats.retransmits, 0u) << "seed " << seed;
    EXPECT_GT(stats.retransmit_backoff, 0) << "seed " << seed;
  }
}

// The full fault menu at once — percent-level drops, CRC corruption, a
// hard link failure, and a progress stall — at prime rank counts, where
// no power-of-two schedule shortcut can hide a hole in recovery. Every
// byte read back must match the fault-free run, for two plan seeds.
TEST(FaultInjection, CombinedFaultsRecoverAtPrimeRankCounts) {
  for (const int n : {7, 13}) {
    WorldConfig base;
    base.machine.num_ranks = n;
    base.machine.ranks_per_node = 1;
    base.machine.dims = topo::Coord5{n, 1, 1, 1, 1};
    const auto clean = run_workload(base, nullptr);

    for (const std::uint64_t seed : {5ull, 11ull}) {
      WorldConfig faulty = base;
      faulty.machine.fault.seed = seed;
      faulty.machine.fault.drop_prob = 0.01;
      faulty.machine.fault.corrupt_prob = 0.002;
      faulty.machine.fault.link_faults.push_back(
          fault::LinkFaultSpec{/*node=*/0, /*dim=*/0, /*dir=*/+1,
                               /*capacity=*/0.0, /*begin=*/0, fault::kForever});
      faulty.machine.fault.stalls.push_back(
          fault::StallSpec{/*rank=*/1, /*begin=*/from_us(100), from_ms(5)});
      CommStats stats;
      const auto recovered = run_workload(faulty, &stats);
      ASSERT_EQ(recovered.size(), clean.size());
      for (std::size_t r = 0; r < clean.size(); ++r) {
        EXPECT_EQ(recovered[r], clean[r])
            << "rank " << r << " of " << n << ", seed " << seed;
      }
      EXPECT_GT(stats.retransmits, 0u) << n << " ranks, seed " << seed;
    }
  }
}

TEST(FaultInjection, ReroutesAroundHardLinkFailure) {
  WorldConfig cfg = ring4();
  cfg.machine.fault.link_faults.push_back(
      fault::LinkFaultSpec{0, 0, +1, 0.0, 0, fault::kForever});
  World world(cfg);
  world.spmd([](Comm& comm) {
    std::int64_t x = 7;
    auto& mem = comm.malloc_collective(8);
    if (comm.rank() == 0) {
      comm.put(&x, mem.at(1), sizeof x);  // node 0 -> 1 must route around
      comm.fence(1);
      std::int64_t back = 0;
      comm.get(mem.at(1), &back, sizeof back);
      EXPECT_EQ(back, 7);
    }
    comm.barrier();
  });
  const fault::Injector* inj = world.machine().injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_GT(inj->stats().reroutes, 0u);
  EXPECT_GT(inj->stats().rerouted_extra_hops, 0u);
}

TEST(FaultInjection, SameSeedSameRecovery) {
  WorldConfig cfg = ring4();
  cfg.machine.fault = lossy_plan(/*seed=*/99);
  CommStats a, b;
  run_workload(cfg, &a);
  run_workload(cfg, &b);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.retransmit_backoff, b.retransmit_backoff);
}

TEST(FaultInjection, RetryBudgetExhaustionEscalatesToFaultError) {
  WorldConfig cfg = ring4();
  cfg.machine.fault.drop_prob = 1.0;  // the fabric eats every packet
  cfg.machine.fault.retry_budget = 5;
  World world(cfg);
  try {
    world.spmd([](Comm& comm) {
      std::int64_t v = 1;
      auto& mem = comm.malloc_collective(8);
      if (comm.rank() == 0) {
        comm.put(&v, mem.at(1), sizeof v);
        comm.fence(1);
      }
      comm.barrier();
    });
    FAIL() << "expected FaultError, but the run completed";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.retries(), 5u);
    EXPECT_FALSE(e.operation().empty());
    EXPECT_NE(e.src_node(), e.dst_node());
    EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos);
  }
}

TEST(FaultInjection, ProgressStallDelaysButDoesNotKillService) {
  // Rank 1 never touches the runtime after the first barrier; its
  // async progress fiber alone can service rank 0's rmw — but that
  // fiber is stalled by the plan for the run's first 50ms (PAMI object
  // creation alone costs ~9ms of virtual time, so the window comfortably
  // covers the rmw's arrival). Liveness: advance_until on rank 0 rides
  // out the stall and the rmw completes promptly once it lifts, instead
  // of deadlocking or waiting on rank 1's main thread.
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.machine.ranks_per_node = 1;
  cfg.armci.progress = ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  const Time stall_end = from_ms(50);
  cfg.machine.fault.stalls.push_back(
      fault::StallSpec{/*rank=*/1, /*begin=*/0, stall_end});
  World world(cfg);
  Time reply_at = 0;
  world.spmd([&](Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    if (comm.rank() == 1) {
      *reinterpret_cast<std::int64_t*>(mem.local(1)) = 40;
      comm.barrier();
      comm.compute(from_us(500));
    } else {
      comm.barrier();
      EXPECT_EQ(comm.fetch_add(mem.at(1), 2), 40);
      reply_at = comm.process().now();
    }
    comm.barrier();
  });
  EXPECT_GE(reply_at, stall_end) << "rmw serviced during the stall window";
  EXPECT_LT(reply_at, stall_end + from_ms(1))
      << "service did not resume promptly after the stall";
  EXPECT_GE(world.total_stats().progress_stalls, 1u);
  EXPECT_GT(world.total_stats().progress_stall_time, 0);
  ASSERT_NE(world.machine().injector(), nullptr);
  EXPECT_GE(world.machine().injector()->stats().progress_stalls, 1u);
}

TEST(FaultInjection, DisabledPlanBuildsNoInjector) {
  World world(ring4());
  world.spmd([](Comm& comm) { comm.barrier(); });
  EXPECT_EQ(world.machine().injector(), nullptr);
}

TEST(FaultInjection, ReportRendersFaultTable) {
  WorldConfig cfg = ring4();
  cfg.machine.fault = lossy_plan(/*seed=*/3);
  CommStats stats;
  run_workload(cfg, &stats);
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1024);
    std::vector<std::byte> buf(1024, std::byte{5});
    if (comm.rank() == 0) {
      for (int i = 0; i < 32; ++i) comm.put(buf.data(), mem.at(1), buf.size());
      comm.fence(1);
    }
    comm.barrier();
  });
  const std::string report = render_report(world, {});
  EXPECT_NE(report.find("fault injection & recovery"), std::string::npos);
  EXPECT_NE(report.find("retransmits"), std::string::npos);
}

TEST(FaultPlanConfig, ParsesAllKnobs) {
  Config cfg;
  cfg.set("fault.seed", "17");
  cfg.set("fault.drop_prob", "0.01");
  cfg.set("fault.corrupt_prob", "0.001");
  cfg.set("fault.link_fail", "3:2:+,5:0:*:10:20");
  cfg.set("fault.link_degrade", "1:1:-:0.25");
  cfg.set("fault.stall", "2:100:300");
  cfg.set("fault.node_fail", "3:500,6:2500");
  cfg.set("fault.ack_timeout_us", "5");
  cfg.set("fault.backoff_factor", "3");
  cfg.set("fault.max_backoff_us", "80");
  cfg.set("fault.retry_budget", "12");
  const fault::FaultPlan plan = fault::FaultPlan::from_config(cfg);
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed, 17u);
  EXPECT_DOUBLE_EQ(plan.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.001);
  ASSERT_EQ(plan.link_faults.size(), 3u);  // hard x2 + degraded
  EXPECT_EQ(plan.link_faults[0].node, 3);
  EXPECT_EQ(plan.link_faults[0].dim, 2);
  EXPECT_EQ(plan.link_faults[0].dir, +1);
  EXPECT_EQ(plan.link_faults[1].node, 5);
  EXPECT_EQ(plan.link_faults[1].dir, 0);
  EXPECT_EQ(plan.link_faults[1].begin, from_us(10));
  EXPECT_EQ(plan.link_faults[1].end, from_us(20));
  EXPECT_DOUBLE_EQ(plan.link_faults[2].capacity, 0.25);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].rank, 2);
  EXPECT_EQ(plan.stalls[0].begin, from_us(100));
  EXPECT_EQ(plan.stalls[0].end, from_us(300));
  ASSERT_EQ(plan.node_fails.size(), 2u);
  EXPECT_EQ(plan.node_fails[0].node, 3);
  EXPECT_EQ(plan.node_fails[0].at, from_us(500));
  EXPECT_EQ(plan.node_fails[1].node, 6);
  EXPECT_EQ(plan.node_fails[1].at, from_us(2500));
  EXPECT_EQ(plan.ack_timeout, from_us(5));
  EXPECT_DOUBLE_EQ(plan.backoff_factor, 3.0);
  EXPECT_EQ(plan.max_backoff, from_us(80));
  EXPECT_EQ(plan.retry_budget, 12u);

  EXPECT_FALSE(fault::FaultPlan{}.enabled());
}

TEST(FaultPlanConfig, RejectsUnknownKeyWithSuggestion) {
  Config cfg;
  cfg.set("fault.drop_probb", "0.01");
  try {
    fault::FaultPlan::from_config(cfg);
    FAIL() << "expected unknown-key rejection";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("drop_probb"), std::string::npos);
    EXPECT_NE(what.find("drop_prob"), std::string::npos)
        << "error should suggest the near-miss key";
  }
}

}  // namespace
}  // namespace pgasq::armci
