// Pairwise notify/wait synchronization (armci_notify semantics): the
// notification is ordered after the producer's writes, so the consumer
// reads produced data without any other fence.
#include <gtest/gtest.h>

#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

WorldConfig make_cfg(int ranks, ProgressMode mode = ProgressMode::kDefault) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.armci.progress = mode;
  if (mode == ProgressMode::kAsyncThread) cfg.armci.contexts_per_rank = 2;
  return cfg;
}

class NotifyModes : public ::testing::TestWithParam<ProgressMode> {};

TEST_P(NotifyModes, ProducerConsumerHandshake) {
  World world(make_cfg(2, GetParam()));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(double) * 16);
    if (comm.rank() == 0) {
      std::vector<double> data(16);
      for (int i = 0; i < 16; ++i) data[static_cast<std::size_t>(i)] = 7.0 + i;
      comm.put(data.data(), mem.at(1), sizeof(double) * 16);
      comm.notify(1);  // fences the put, then signals
    } else {
      comm.wait_notify(0);
      // No fence needed on the consumer side: the data must be there.
      const auto* d = reinterpret_cast<const double*>(mem.local(1));
      for (int i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(d[i], 7.0 + i);
      }
      EXPECT_EQ(comm.notifications_from(0), 1u);
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, NotifyModes,
                         ::testing::Values(ProgressMode::kDefault,
                                           ProgressMode::kAsyncThread));

TEST(Notify, CountsAccumulateAcrossRounds) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(std::int64_t));
    if (comm.rank() == 0) {
      for (int round = 1; round <= 3; ++round) {
        std::int64_t v = round;
        comm.put(&v, mem.at(1), sizeof v);
        comm.notify(1);
      }
    } else {
      comm.wait_notify(0, 2);  // skip ahead: wait for the second signal
      EXPECT_GE(*reinterpret_cast<std::int64_t*>(mem.local(1)), 2);
      comm.wait_notify(0, 3);
      EXPECT_EQ(*reinterpret_cast<std::int64_t*>(mem.local(1)), 3);
    }
    comm.barrier();
  });
}

TEST(Notify, RingPipeline) {
  // Each rank produces for its right neighbour in sequence: a ring of
  // pairwise synchronizations with no global barrier inside the loop.
  World world(make_cfg(5));
  world.spmd([](Comm& comm) {
    const int p = comm.nprocs();
    const int me = comm.rank();
    const int right = (me + 1) % p;
    const int left = (me + p - 1) % p;
    auto& mem = comm.malloc_collective(sizeof(std::int64_t));
    if (me == 0) {
      std::int64_t token = 100;
      comm.put(&token, mem.at(right), sizeof token);
      comm.notify(right);
      comm.wait_notify(left);  // token came all the way around
      EXPECT_EQ(*reinterpret_cast<std::int64_t*>(mem.local(me)), 100 + p - 1);
    } else {
      comm.wait_notify(left);
      std::int64_t token = *reinterpret_cast<std::int64_t*>(mem.local(me)) + 1;
      comm.put(&token, mem.at(right), sizeof token);
      comm.notify(right);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
