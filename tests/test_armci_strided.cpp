// Strided (uniformly non-contiguous) transfers: spec geometry, chunk
// enumeration, and a put-then-get round-trip property test swept over
// geometries x protocols — every protocol must move identical bytes.
#include <gtest/gtest.h>

#include <vector>

#include "core/comm.hpp"
#include "core/strided.hpp"

namespace pgasq::armci {
namespace {

TEST(StridedSpec, GeometryBasics) {
  // 4 rows of 32 bytes, pitches 64/128.
  const StridedSpec s = StridedSpec::rect2d(4, 32, 64, 128);
  EXPECT_EQ(s.levels(), 1);
  EXPECT_EQ(s.chunk_bytes(), 32u);
  EXPECT_EQ(s.num_chunks(), 4u);
  EXPECT_EQ(s.total_bytes(), 128u);
  EXPECT_EQ(s.src_extent(), 64u * 3 + 32);
  EXPECT_EQ(s.dst_extent(), 128u * 3 + 32);
}

TEST(StridedSpec, ContiguousDegenerate) {
  const StridedSpec s = StridedSpec::contiguous(100);
  EXPECT_EQ(s.levels(), 0);
  EXPECT_EQ(s.num_chunks(), 1u);
  EXPECT_EQ(s.total_bytes(), 100u);
  int calls = 0;
  s.for_each_chunk([&](std::uint64_t so, std::uint64_t po) {
    EXPECT_EQ(so, 0u);
    EXPECT_EQ(po, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(StridedSpec, ThreeLevelEnumerationOrderAndOffsets) {
  // l0=8; level1: 2 repeats stride 16/32; level2: 3 repeats stride 64/128.
  const StridedSpec s({8, 2, 3}, {16, 64}, {32, 128});
  EXPECT_EQ(s.num_chunks(), 6u);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  s.for_each_chunk([&](std::uint64_t so, std::uint64_t po) { seen.push_back({so, po}); });
  ASSERT_EQ(seen.size(), 6u);
  // Innermost level varies fastest.
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(seen[1], (std::pair<std::uint64_t, std::uint64_t>{16, 32}));
  EXPECT_EQ(seen[2], (std::pair<std::uint64_t, std::uint64_t>{64, 128}));
  EXPECT_EQ(seen[3], (std::pair<std::uint64_t, std::uint64_t>{80, 160}));
  EXPECT_EQ(seen[4], (std::pair<std::uint64_t, std::uint64_t>{128, 256}));
  EXPECT_EQ(seen[5], (std::pair<std::uint64_t, std::uint64_t>{144, 288}));
}

TEST(StridedSpec, RejectsMalformedGeometry) {
  EXPECT_THROW(StridedSpec({}, {}, {}), Error);
  EXPECT_THROW(StridedSpec({0}, {}, {}), Error);
  EXPECT_THROW(StridedSpec({8, 2}, {}, {16}), Error);      // stride count mismatch
  EXPECT_THROW(StridedSpec({8, 2}, {4}, {16}), Error);     // overlapping src stride
  EXPECT_THROW(StridedSpec({8, 0}, {8}, {8}), Error);      // zero repeat
}

TEST(StridedSpec, TypedChunkListSidesSwapForGet) {
  const StridedSpec s = StridedSpec::rect2d(2, 8, 16, 32);
  const auto put_chunks = s.chunks_local_remote(/*local_is_src=*/true);
  const auto get_chunks = s.chunks_local_remote(/*local_is_src=*/false);
  ASSERT_EQ(put_chunks.size(), 2u);
  EXPECT_EQ(put_chunks[1].local_offset, 16u);
  EXPECT_EQ(put_chunks[1].remote_offset, 32u);
  EXPECT_EQ(get_chunks[1].local_offset, 32u);
  EXPECT_EQ(get_chunks[1].remote_offset, 16u);
}

// --- Round-trip property sweep ---------------------------------------------

struct Geometry {
  std::uint64_t l0;
  std::uint64_t rows;
  StridedProtocol protocol;
};

class StridedRoundTrip : public ::testing::TestWithParam<Geometry> {};

TEST_P(StridedRoundTrip, PutGetPreservesDataAndUntouchedGaps) {
  const Geometry g = GetParam();
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.armci.strided = g.protocol;
  World world(cfg);
  world.spmd([g](Comm& comm) {
    const std::uint64_t src_pitch = g.l0 * 2;
    const std::uint64_t dst_pitch = g.l0 * 3;
    const std::size_t src_bytes = src_pitch * g.rows + g.l0;
    const std::size_t dst_bytes = dst_pitch * g.rows + g.l0;
    auto& mem = comm.malloc_collective(dst_bytes);
    auto* src = static_cast<std::byte*>(comm.malloc_local(src_bytes));
    auto* back = static_cast<std::byte*>(comm.malloc_local(src_bytes));
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < src_bytes; ++i) {
        src[i] = static_cast<std::byte>((i * 13 + 5) % 251);
      }
      const StridedSpec put_spec =
          g.rows == 1 ? StridedSpec::contiguous(g.l0)
                      : StridedSpec::rect2d(g.rows, g.l0, src_pitch, dst_pitch);
      comm.put_strided(src, mem.at(1), put_spec);
      comm.fence(1);
      // Remote gaps between rows stay zero (no overwrite bleed).
      std::vector<std::byte> raw(dst_bytes);
      comm.get(mem.at(1), raw.data(), dst_bytes);
      for (std::uint64_t r = 0; r < g.rows; ++r) {
        if (r * dst_pitch + g.l0 < dst_bytes) {
          EXPECT_EQ(raw[r * dst_pitch + g.l0], std::byte{0})
              << "gap touched after row " << r;
        }
      }
      // Get it back with the mirrored spec.
      const StridedSpec get_spec =
          g.rows == 1 ? StridedSpec::contiguous(g.l0)
                      : StridedSpec::rect2d(g.rows, g.l0, dst_pitch, src_pitch);
      std::fill(back, back + src_bytes, std::byte{0});
      comm.get_strided(mem.at(1), back, get_spec);
      for (std::uint64_t r = 0; r < g.rows; ++r) {
        for (std::uint64_t i = 0; i < g.l0; ++i) {
          ASSERT_EQ(back[r * src_pitch + i], src[r * src_pitch + i])
              << "row " << r << " byte " << i << " protocol "
              << static_cast<int>(g.protocol);
        }
      }
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    GeometriesAndProtocols, StridedRoundTrip,
    ::testing::Values(
        Geometry{8, 1, StridedProtocol::kAuto},
        Geometry{8, 64, StridedProtocol::kAuto},        // tall-skinny -> typed
        Geometry{8, 64, StridedProtocol::kZeroCopy},
        Geometry{8, 64, StridedProtocol::kPackUnpack},
        Geometry{256, 4, StridedProtocol::kAuto},
        Geometry{256, 4, StridedProtocol::kTyped},
        Geometry{256, 4, StridedProtocol::kPackUnpack},
        Geometry{4096, 16, StridedProtocol::kZeroCopy},
        Geometry{4096, 16, StridedProtocol::kTyped},
        Geometry{1, 7, StridedProtocol::kZeroCopy},     // single-byte chunks
        Geometry{1, 7, StridedProtocol::kPackUnpack}));

TEST(Strided, AutoRoutesTallSkinnyThroughTyped) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 16);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 16));
    if (comm.rank() == 0) {
      comm.put_strided(buf, mem.at(1), StridedSpec::rect2d(64, 16, 32, 32));
      EXPECT_EQ(comm.stats().typed_ops, 1u);
      EXPECT_EQ(comm.stats().zero_copy_chunks, 0u);
      comm.put_strided(buf, mem.at(1), StridedSpec::rect2d(8, 2048, 4096, 4096));
      EXPECT_EQ(comm.stats().zero_copy_chunks, 8u);
    }
    comm.barrier();
  });
}

TEST(Strided, FallsBackToPackWhenNoRegions) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.machine.max_memregions_per_rank = 0;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 14);
    std::vector<std::byte> buf(1 << 14, std::byte{9});
    if (comm.rank() == 0) {
      comm.put_strided(buf.data(), mem.at(1), StridedSpec::rect2d(16, 128, 256, 256));
      EXPECT_EQ(comm.stats().packed_ops, 1u);
      std::vector<std::byte> back(1 << 14, std::byte{0});
      comm.get_strided(mem.at(1), back.data(), StridedSpec::rect2d(16, 128, 256, 256));
      EXPECT_EQ(comm.stats().packed_ops, 2u);
      EXPECT_EQ(back[0], std::byte{9});
    }
    comm.barrier();
  });
}

TEST(Strided, AccStridedAccumulatesDoubles) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    // 4 rows of 4 doubles in an 8-double-pitch target.
    auto& mem = comm.malloc_collective(sizeof(double) * 8 * 4);
    if (comm.rank() == 1) {
      auto* d = reinterpret_cast<double*>(mem.local(1));
      for (int i = 0; i < 32; ++i) d[i] = 1.0;
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<double> src(4 * 4);
      for (int i = 0; i < 16; ++i) src[static_cast<std::size_t>(i)] = i;
      const StridedSpec spec = StridedSpec::rect2d(4, 4 * sizeof(double),
                                                   4 * sizeof(double),
                                                   8 * sizeof(double));
      comm.acc_strided(2.0, src.data(), mem.at(1), spec);
      comm.fence(1);
      std::vector<double> all(32);
      comm.get(mem.at(1), all.data(), sizeof(double) * 32);
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r * 8 + c)],
                           1.0 + 2.0 * (r * 4 + c));
        }
        // Untouched half of each row.
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r * 8 + 5)], 1.0);
      }
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
