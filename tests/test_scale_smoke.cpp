// Scale smoke tests: the paper's full evaluation sizes (up to 4096
// ranks, c = 16) must construct, initialize, and run basic traffic.
// These keep wall-clock modest by doing little per rank.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "ga/global_array.hpp"

namespace pgasq::armci {
namespace {

TEST(Scale, FourThousandRanksInitAndCounter) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 4096;
  cfg.machine.ranks_per_node = 16;
  World world(cfg);
  EXPECT_EQ(world.machine().torus().num_nodes(), 256);
  std::int64_t last = -1;
  world.spmd([&](Comm& comm) {
    ga::SharedCounter counter(comm);
    comm.barrier();
    // One ticket per rank: exercises 4096-way counter service.
    counter.next();
    comm.barrier();
    if (comm.rank() == 0) last = counter.read();
    comm.barrier();
  });
  EXPECT_EQ(last, 4096);
}

TEST(Scale, TwoThousandRanksNeighbourPuts) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2048;
  cfg.machine.ranks_per_node = 16;
  cfg.armci.progress = ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(128);
    std::byte buf[64]{static_cast<std::byte>(comm.rank() & 0xff)};
    const int right = (comm.rank() + 1) % comm.nprocs();
    comm.put(buf, mem.at(right), 64);
    comm.fence(right);
    comm.barrier();
    std::byte back[64];
    comm.get(mem.at(comm.rank()), back, 64);
    const int left = (comm.rank() + comm.nprocs() - 1) % comm.nprocs();
    EXPECT_EQ(back[0], static_cast<std::byte>(left & 0xff));
    comm.barrier();
  });
}

TEST(Scale, VirtualTimeStaysCoherentAtScale) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 1024;
  cfg.machine.ranks_per_node = 16;
  World world(cfg);
  world.spmd([](Comm& comm) {
    const Time before = comm.now();
    comm.barrier();
    comm.compute(from_us(10));
    comm.barrier();
    EXPECT_GT(comm.now(), before + from_us(10));
  });
  // Init dominates: client (1.2ms) + context (4ms) per rank, overlapped
  // across ranks, so elapsed stays in the ~ms range, not seconds.
  EXPECT_LT(world.elapsed(), from_ms(100));
}

TEST(Scale, PartitionShapesMatchEvaluationSetup) {
  // The three Fig 11 sizes map to half-rack/rack partitions with c=16.
  for (const auto& [ranks, nodes] : {std::pair{1024, 64}, std::pair{2048, 128},
                                    std::pair{4096, 256}}) {
    pami::MachineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.ranks_per_node = 16;
    pami::Machine machine(cfg);
    EXPECT_EQ(machine.torus().num_nodes(), nodes);
  }
}

}  // namespace
}  // namespace pgasq::armci
