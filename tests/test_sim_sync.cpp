// Unit tests for fiber synchronization primitives.
#include <gtest/gtest.h>

#include <vector>

#include "sim/sync.hpp"
#include "util/error.hpp"

namespace pgasq::sim {
namespace {

using namespace pgasq::literals;

TEST(WaitQueue, NotifyOneWakesFifo) {
  Engine engine;
  WaitQueue q(engine);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("w" + std::to_string(i), [&, i] {
      q.wait();
      woke.push_back(i);
    });
  }
  engine.spawn("n", [&] {
    engine.sleep_for(10);
    EXPECT_EQ(q.waiting(), 3u);
    q.notify_one();
    engine.sleep_for(10);
    q.notify_all();
  });
  engine.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, WaitUntilTimesOut) {
  Engine engine;
  WaitQueue q(engine);
  bool notified = true;
  engine.spawn("w", [&] {
    notified = q.wait_until(100);
    EXPECT_EQ(engine.now(), 100);
  });
  engine.run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(q.waiting(), 0u);
}

TEST(WaitQueue, WaitUntilNotifiedBeforeDeadline) {
  Engine engine;
  WaitQueue q(engine);
  bool notified = false;
  engine.spawn("w", [&] {
    notified = q.wait_until(1000);
    EXPECT_LT(engine.now(), 1000);
  });
  engine.spawn("n", [&] {
    engine.sleep_for(10);
    q.notify_one();
  });
  engine.run();
  EXPECT_TRUE(notified);
}

TEST(SimMutex, MutualExclusionAndStats) {
  Engine engine;
  SimMutex m(engine);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    engine.spawn("t" + std::to_string(i), [&] {
      for (int r = 0; r < 3; ++r) {
        m.lock();
        ++in_critical;
        max_in_critical = std::max(max_in_critical, in_critical);
        engine.sleep_for(10);  // hold across a blocking point
        --in_critical;
        m.unlock();
      }
    });
  }
  engine.run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_GT(m.contended_acquires(), 0u);
  EXPECT_GT(m.total_wait_time(), 0);
  EXPECT_FALSE(m.locked());
}

TEST(SimMutex, TryLock) {
  Engine engine;
  SimMutex m(engine);
  engine.spawn("a", [&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_TRUE(m.held_by_current());
    engine.sleep_for(100);
    m.unlock();
  });
  engine.spawn("b", [&] {
    engine.sleep_for(10);
    EXPECT_FALSE(m.try_lock());
    EXPECT_FALSE(m.held_by_current());
    engine.sleep_for(200);
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  engine.run();
}

TEST(SimMutex, RecursiveLockAndForeignUnlockRejected) {
  Engine engine;
  SimMutex m(engine);
  engine.spawn("a", [&] {
    m.lock();
    EXPECT_THROW(m.lock(), Error);
    m.unlock();
    EXPECT_THROW(m.unlock(), Error);  // not owner anymore
  });
  engine.run();
}

TEST(SimBarrier, ReleasesAllTogetherEachGeneration) {
  Engine engine;
  SimBarrier barrier(engine, 4);
  std::vector<Time> releases;
  for (int i = 0; i < 4; ++i) {
    engine.spawn("p" + std::to_string(i), [&, i] {
      for (int round = 0; round < 3; ++round) {
        engine.sleep_for((i + 1) * (round + 1) * 10);
        barrier.arrive_and_wait();
        releases.push_back(engine.now());
      }
    });
  }
  engine.run();
  ASSERT_EQ(releases.size(), 12u);
  // Within each round, all four release at the same virtual instant.
  for (int round = 0; round < 3; ++round) {
    for (int i = 1; i < 4; ++i) {
      EXPECT_EQ(releases[static_cast<std::size_t>(round * 4 + i)],
                releases[static_cast<std::size_t>(round * 4)]);
    }
  }
  EXPECT_EQ(barrier.generation(), 3u);
}

TEST(SimBarrier, SingleParticipantNeverBlocks) {
  Engine engine;
  SimBarrier barrier(engine, 1);
  engine.spawn("solo", [&] {
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
  });
  engine.run();
  EXPECT_EQ(barrier.generation(), 2u);
}

}  // namespace
}  // namespace pgasq::sim
