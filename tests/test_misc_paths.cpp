// Coverage for less-travelled paths: dynamic routing in the
// contention model, endpoint caching disabled, local allocation
// lifecycle, and Comm::progress in Default mode.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "noc/network.hpp"
#include "topo/torus.hpp"

namespace pgasq {
namespace {

TEST(DynamicRouting, SpreadsIncastAndStaysDeterministic) {
  topo::Torus5D torus(topo::bgq_partition_dims(32));
  noc::BgqParameters det_params;
  noc::BgqParameters dyn_params;
  dyn_params.dynamic_routing = true;
  auto run = [&](const noc::BgqParameters& p) {
    noc::LinkContentionModel net(torus, p);
    Time last = 0;
    for (int n = 1; n < torus.num_nodes(); ++n) {
      last = std::max(last, net.transfer(n, 0, 1 << 16, 0).arrive);
    }
    return last;
  };
  const Time det = run(det_params);
  const Time dyn1 = run(dyn_params);
  const Time dyn2 = run(dyn_params);
  EXPECT_LT(dyn1, det) << "dynamic routing must relieve the incast";
  EXPECT_EQ(dyn1, dyn2) << "and stay deterministic";
}

TEST(DynamicRouting, UncontendedLatencyUnchanged) {
  topo::Torus5D torus(topo::bgq_partition_dims(32));
  noc::BgqParameters p;
  p.dynamic_routing = true;
  noc::LinkContentionModel net(torus, p);
  // Minimal routes have identical hop counts whatever the dim order.
  const auto t = net.transfer(0, 7, 4096, 0);
  noc::BgqParameters pd;
  noc::LinkContentionModel det(torus, pd);
  const auto td = det.transfer(0, 7, 4096, 0);
  EXPECT_EQ(t.arrive, td.arrive);
}

TEST(EndpointCacheOff, OperationsStillCorrectJustSlower) {
  armci::WorldConfig cached_cfg;
  cached_cfg.machine.num_ranks = 4;
  armci::WorldConfig uncached_cfg = cached_cfg;
  uncached_cfg.armci.cache_endpoints = false;
  Time cached_time = 0;
  Time uncached_time = 0;
  for (auto* cfg : {&cached_cfg, &uncached_cfg}) {
    armci::World world(*cfg);
    Time* slot = cfg == &cached_cfg ? &cached_time : &uncached_time;
    world.spmd([&](armci::Comm& comm) {
      auto& mem = comm.malloc_collective(256);
      std::byte buf[64]{};
      comm.barrier();
      if (comm.rank() == 0) {
        const Time t0 = comm.now();
        for (int round = 0; round < 5; ++round) {
          for (int t = 1; t < comm.nprocs(); ++t) comm.put(buf, mem.at(t), 64);
        }
        comm.fence_all();
        *slot = comm.now() - t0;
        EXPECT_EQ(comm.stats().endpoints_created,
                  comm.options().cache_endpoints ? 3u : 15u);
      }
      comm.barrier();
    });
  }
  EXPECT_GT(uncached_time, cached_time);
}

TEST(LocalAllocation, MallocFreeLifecycle) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    const auto regions_before = comm.process().space().memregions;
    void* a = comm.malloc_local(1024);
    void* b = comm.malloc_local(2048);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(comm.process().space().memregions, regions_before + 2);
    comm.free_local(a);
    EXPECT_EQ(comm.process().space().memregions, regions_before + 1);
    EXPECT_THROW(comm.free_local(a), Error);  // double free
    comm.free_local(b);
    comm.barrier();
  });
}

TEST(Progress, ExplicitCallServicesPendingRequests) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    comm.barrier();
    if (comm.rank() == 0) {
      // Service loop: plain progress calls until the peer bumped us.
      while (*reinterpret_cast<std::int64_t*>(mem.local(0)) < 3) {
        comm.progress();
        comm.compute(from_us(1));
      }
    } else {
      for (int i = 0; i < 3; ++i) comm.fetch_add(mem.at(0), 1);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq
