// The coll engine: every collective x every algorithm across
// power-of-two, composite non-power-of-two, and prime rank counts;
// bitwise determinism of the floating-point reductions; byte-identical
// results under a lossy fault plan (the PR 1 retransmit protocol must
// make tree and ring schedules fault-transparent); the selection
// table and its coll.* overrides; and the report's collective table.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "coll/coll.hpp"
#include "core/report.hpp"
#include "core/world.hpp"
#include "ga/collectives.hpp"

namespace pgasq::coll {
namespace {

using CollOpts = std::vector<std::pair<std::string, std::string>>;

armci::WorldConfig make_cfg(int ranks, std::uint64_t seed = 42,
                            CollOpts coll = {}) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.machine.seed = seed;
  cfg.armci.coll = std::move(coll);
  return cfg;
}

/// Forces every collective through `algo` (selection normalizes combos
/// the algorithm cannot serve, e.g. hw alltoall -> torus-ring).
CollOpts force_all(const std::string& algo) {
  CollOpts opts;
  for (const char* op : armci::kCollOpNames) {
    opts.emplace_back(std::string("algo.") + op, algo);
  }
  return opts;
}

// ---------------------------------------------------------------------------
// Full matrix: 6 collectives x 4 algorithms x {pow2, composite, prime,
// larger pow2} rank counts, with value checks for every operation.

class CollMatrix
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(CollMatrix, AllSixOpsProduceCorrectValues) {
  const int p = std::get<0>(GetParam());
  const std::string algo = std::get<1>(GetParam());
  armci::World world(make_cfg(p, 42, force_all(algo)));
  world.spmd([p](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    const int me = comm.rank();
    const int root = p > 1 ? 1 : 0;

    engine.barrier();

    // Broadcast: odd byte count exercises slot padding.
    std::vector<std::byte> b(777, std::byte{0});
    if (me == root) {
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<std::byte>(i * 7 + 3);
      }
    }
    engine.broadcast(b.data(), b.size(), root);
    for (std::size_t i = 0; i < b.size(); ++i) {
      ASSERT_EQ(b[i], static_cast<std::byte>(i * 7 + 3)) << "byte " << i;
    }

    // Reduce to root.
    std::vector<double> r(33);
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] = 0.25 * (me + 1) + static_cast<double>(i);
    }
    engine.reduce_sum(r.data(), r.size(), root);
    if (me == root) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        EXPECT_NEAR(r[i], 0.25 * p * (p + 1) / 2.0 + static_cast<double>(i) * p,
                    1e-9)
            << "element " << i;
      }
    }

    // Allreduce: every rank must end with the sum.
    std::vector<double> a(19);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = (me + 1) * (static_cast<double>(i) + 0.5);
    }
    engine.allreduce_sum(a.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], p * (p + 1) / 2.0 * (static_cast<double>(i) + 0.5),
                  1e-9)
          << "element " << i;
    }

    // Allgather.
    constexpr std::size_t kBlk = 48;
    std::vector<std::byte> gin(kBlk), gout(kBlk * static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < kBlk; ++i) {
      gin[i] = static_cast<std::byte>(me * 31 + static_cast<int>(i));
    }
    engine.allgather(gin.data(), kBlk, gout.data());
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < kBlk; ++i) {
        ASSERT_EQ(gout[static_cast<std::size_t>(src) * kBlk + i],
                  static_cast<std::byte>(src * 31 + static_cast<int>(i)))
            << "block " << src << " byte " << i;
      }
    }

    // Alltoall: out[s..] must hold what rank s addressed to me.
    constexpr std::size_t kMsg = 40;
    std::vector<std::byte> tin(kMsg * static_cast<std::size_t>(p));
    std::vector<std::byte> tout(tin.size());
    for (int dst = 0; dst < p; ++dst) {
      for (std::size_t i = 0; i < kMsg; ++i) {
        tin[static_cast<std::size_t>(dst) * kMsg + i] =
            static_cast<std::byte>(me * 13 + dst * 5 + static_cast<int>(i));
      }
    }
    engine.alltoall(tin.data(), kMsg, tout.data());
    for (int src = 0; src < p; ++src) {
      for (std::size_t i = 0; i < kMsg; ++i) {
        ASSERT_EQ(tout[static_cast<std::size_t>(src) * kMsg + i],
                  static_cast<std::byte>(src * 13 + me * 5 + static_cast<int>(i)))
            << "from " << src << " byte " << i;
      }
    }

    engine.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksByAlgo, CollMatrix,
    ::testing::Combine(::testing::Values(4, 6, 7, 16),
                       ::testing::Values("binomial", "recdbl", "torus-ring",
                                         "hw", "rab")),
    [](const auto& info) {
      return "np" + std::to_string(std::get<0>(info.param)) + "_" +
             [](std::string s) {
               for (char& c : s) {
                 if (c == '-') c = '_';
               }
               return s;
             }(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Floating-point determinism. Each algorithm fixes its own association
// order, so within one algorithm the result must be bitwise identical
// on every rank and across machine seeds; across *algorithms* only
// numerical closeness is guaranteed.

std::vector<std::uint64_t> allreduce_bits(int p, std::uint64_t seed,
                                          const std::string& algo,
                                          fault::FaultPlan plan = {}) {
  armci::WorldConfig cfg = make_cfg(p, seed, {{"algo.allreduce", algo}});
  cfg.machine.fault = plan;
  armci::World world(cfg);
  std::vector<std::uint64_t> bits(static_cast<std::size_t>(p), 0);
  world.spmd([&](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    // Values whose sum is association-sensitive in the last ulps.
    double x = 0.1 * (comm.rank() + 1) + 1e-13 / (comm.rank() + 1);
    engine.allreduce_sum(&x, 1);
    std::memcpy(&bits[static_cast<std::size_t>(comm.rank())], &x, sizeof(x));
    engine.barrier();
  });
  return bits;
}

TEST(CollDeterminism, BitwiseIdenticalAcrossRanksAndSeeds) {
  for (const char* algo : {"binomial", "recdbl", "torus-ring", "hw", "rab"}) {
    const auto run1 = allreduce_bits(6, 42, algo);
    const auto run2 = allreduce_bits(6, 1337, algo);
    for (std::size_t r = 1; r < run1.size(); ++r) {
      EXPECT_EQ(run1[r], run1[0]) << algo << ": rank " << r << " diverged";
    }
    EXPECT_EQ(run1, run2) << algo << ": result depends on the machine seed";
  }
}

TEST(CollDeterminism, AlgorithmsAgreeNumerically) {
  const auto as_double = [](std::uint64_t bits) {
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  };
  const double recdbl = as_double(allreduce_bits(6, 42, "recdbl")[0]);
  for (const char* algo : {"binomial", "torus-ring", "hw", "rab"}) {
    EXPECT_NEAR(as_double(allreduce_bits(6, 42, algo)[0]), recdbl, 1e-12)
        << algo;
  }
}

// ---------------------------------------------------------------------------
// Fault transparency: with a 1% packet-drop plan the retransmit
// protocol recovers every schedule message, so tree and ring schedules
// must deliver byte-identical results — only timings may move.

TEST(CollFaults, LossyFabricLeavesResultsByteIdentical) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.01;
  ASSERT_TRUE(plan.enabled());
  for (const char* algo : {"binomial", "recdbl", "torus-ring", "rab"}) {
    const auto clean = allreduce_bits(8, 42, algo);
    const auto lossy = allreduce_bits(8, 42, algo, plan);
    EXPECT_EQ(clean, lossy) << algo << ": faults changed the payload";
  }
}

TEST(CollFaults, BroadcastSurvivesLossyFabric) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 0.01;
  for (const char* algo : {"binomial", "torus-ring"}) {
    armci::WorldConfig cfg = make_cfg(8, 42, {{"algo.broadcast", algo}});
    cfg.machine.fault = plan;
    armci::World world(cfg);
    world.spmd([](armci::Comm& comm) {
      auto& engine = CollEngine::of(comm);
      std::vector<std::byte> buf(4096, std::byte{0});
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<std::byte>(i * 11 + 5);
        }
      }
      engine.broadcast(buf.data(), buf.size(), 0);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<std::byte>(i * 11 + 5)) << "byte " << i;
      }
      engine.barrier();
    });
  }
}

// ---------------------------------------------------------------------------
// ga::gop_sum now routes through the engine: the old gather-to-root
// serialization at non-power-of-two counts is gone. Regression over
// the counts that used to hit that fallback.

class GopNonPow2 : public ::testing::TestWithParam<int> {};

TEST_P(GopNonPow2, SumLandsOnEveryRank) {
  const int p = GetParam();
  armci::World world(make_cfg(p));
  world.spmd([p](armci::Comm& comm) {
    std::vector<double> x(5);
    for (int i = 0; i < 5; ++i) {
      x[static_cast<std::size_t>(i)] = comm.rank() + 10.0 * i;
    }
    ga::gop_sum(comm, x.data(), x.size());
    const double rank_sum = p * (p - 1) / 2.0;
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], rank_sum + 10.0 * i * p, 1e-9)
          << "element " << i << " on rank " << comm.rank();
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Counts, GopNonPow2, ::testing::Values(3, 5, 6, 12));

// ---------------------------------------------------------------------------
// Selection table and overrides.

TEST(Selection, DefaultsMatchTheTable) {
  armci::World world(make_cfg(16));
  world.spmd([](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    // With the collective logic available it carries every combine/
    // replicate collective, as on real BG/Q (S II-A).
    EXPECT_EQ(engine.algo_for(Op::kBarrier, 0), Algo::kHw);
    EXPECT_EQ(engine.algo_for(Op::kBroadcast, 256), Algo::kHw);
    EXPECT_EQ(engine.algo_for(Op::kAllreduce, 256), Algo::kHw);
    EXPECT_EQ(engine.algo_for(Op::kAllreduce, 1 << 20), Algo::kHw);
    // Personalized / concatenation collectives have no hw combine.
    EXPECT_EQ(engine.algo_for(Op::kAllgather, 64), Algo::kRecdbl);
    EXPECT_EQ(engine.algo_for(Op::kAlltoall, 4096), Algo::kTorusRing);
    engine.barrier();
  });
}

TEST(Selection, DisablingHwFallsBackToSoftware) {
  armci::World world(make_cfg(16, 42, {{"hw", "0"}}));
  world.spmd([](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    EXPECT_FALSE(engine.config().hw_enabled);
    // The size/geometry table now picks among software schedules.
    EXPECT_EQ(engine.algo_for(Op::kBarrier, 0), Algo::kRecdbl);
    EXPECT_EQ(engine.algo_for(Op::kBroadcast, 256), Algo::kBinomial);
    EXPECT_EQ(engine.algo_for(Op::kAllreduce, 256), Algo::kRecdbl);
    EXPECT_EQ(engine.algo_for(Op::kAllreduce, 1 << 20), Algo::kTorusRing);
    engine.barrier();
  });
}

TEST(Selection, ForcedAlgorithmsAreNormalized) {
  armci::World world(make_cfg(6, 42,
                              {{"algo.alltoall", "hw"},
                               {"algo.broadcast", "recdbl"},
                               {"algo.allgather", "recdbl"}}));
  world.spmd([](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    // hw has no personalized exchange; recdbl bcast does not exist;
    // recdbl allgather needs a power of two (p = 6 here).
    EXPECT_EQ(engine.algo_for(Op::kAlltoall, 1024), Algo::kTorusRing);
    EXPECT_EQ(engine.algo_for(Op::kBroadcast, 1024), Algo::kBinomial);
    EXPECT_EQ(engine.algo_for(Op::kAllgather, 1024), Algo::kTorusRing);
    engine.barrier();
  });
}

TEST(Selection, RejectsUnknownOptions) {
  armci::World world(make_cfg(2, 42, {{"bogus", "1"}}));
  EXPECT_THROW(world.spmd([](armci::Comm& comm) { CollEngine::of(comm); }),
               Error);
}

TEST(Selection, LinkFaultPlanDeselectsHardware) {
  armci::WorldConfig cfg = make_cfg(8);
  fault::LinkFaultSpec link;
  link.node = 0;
  link.dim = 0;
  link.dir = +1;
  cfg.machine.fault.link_faults.push_back(link);
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    EXPECT_TRUE(engine.geometry().link_faults);
    EXPECT_NE(engine.algo_for(Op::kBarrier, 0), Algo::kHw);
    EXPECT_NE(engine.algo_for(Op::kAllreduce, 1 << 20), Algo::kHw);
    engine.barrier();
  });
}

// ---------------------------------------------------------------------------
// The communication report gains a per-(op, algorithm) table.

TEST(CollReport, ReportListsCollectiveUsage) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    auto& engine = CollEngine::of(comm);
    std::vector<double> x(64, 1.0);
    engine.allreduce_sum(x.data(), x.size());
    engine.barrier();
  });
  const std::string report = armci::render_report(world, armci::ReportOptions{});
  EXPECT_NE(report.find("collective"), std::string::npos);
  EXPECT_NE(report.find("allreduce"), std::string::npos);
  EXPECT_NE(report.find("barrier"), std::string::npos);
}

}  // namespace
}  // namespace pgasq::coll
