// Typed accumulate (ARMCI_ACC_INT/LNG/FLT/DBL/DCP): every supported
// element type reduces correctly, concurrently, and commutatively.
#include <gtest/gtest.h>

#include <complex>

#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

WorldConfig make_cfg(int ranks) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  return cfg;
}

template <typename T>
void roundtrip_acc(T alpha, T seed, T expected_third_element) {
  World world(make_cfg(2));
  world.spmd([&](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(T) * 16);
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<T> src(16);
      for (int i = 0; i < 16; ++i) src[static_cast<std::size_t>(i)] = seed * T(i);
      comm.acc_t<T>(alpha, src.data(), mem.at(1), 16);
      comm.fence(1);
      std::vector<T> back(16);
      comm.get(mem.at(1), back.data(), sizeof(T) * 16);
      EXPECT_EQ(back[3], expected_third_element);
      EXPECT_EQ(back[0], T(0));
    }
    comm.barrier();
  });
}

TEST(AccTypes, Int32) { roundtrip_acc<std::int32_t>(2, 5, 2 * 5 * 3); }
TEST(AccTypes, Int64) {
  roundtrip_acc<std::int64_t>(3, 1000000007LL, 3 * 1000000007LL * 3);
}
TEST(AccTypes, Float) { roundtrip_acc<float>(0.5f, 2.0f, 0.5f * 2.0f * 3); }
TEST(AccTypes, Double) { roundtrip_acc<double>(1.5, 0.25, 1.5 * 0.25 * 3); }

TEST(AccTypes, ComplexDouble) {
  using C = std::complex<double>;
  // alpha * (seed * i): (0,1) * (1,1)*3 = (0+3i)*(... compute directly.
  const C alpha(0.0, 1.0);
  const C seed(1.0, 1.0);
  roundtrip_acc<C>(alpha, seed, alpha * seed * 3.0);
}

TEST(AccTypes, MixedTypesToDisjointBuffers) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& dmem = comm.malloc_collective(sizeof(double) * 8);
    auto& imem = comm.malloc_collective(sizeof(std::int64_t) * 8);
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<double> dv(8, 1.5);
      std::vector<std::int64_t> iv(8, 7);
      Handle h;
      comm.nb_acc_t<double>(2.0, dv.data(), dmem.at(1), 8, h);
      comm.nb_acc_t<std::int64_t>(3, iv.data(), imem.at(1), 8, h);
      comm.wait(h);
      comm.fence(1);
      double dback[8];
      std::int64_t iback[8];
      comm.get(dmem.at(1), dback, sizeof dback);
      comm.get(imem.at(1), iback, sizeof iback);
      EXPECT_DOUBLE_EQ(dback[5], 3.0);
      EXPECT_EQ(iback[5], 21);
    }
    comm.barrier();
  });
}

TEST(AccTypes, IntAccumulateFromAllRanksCommutes) {
  World world(make_cfg(6));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(std::int32_t) * 4);
    comm.barrier();
    std::vector<std::int32_t> one(4, 1);
    comm.acc_t<std::int32_t>(comm.rank() + 1, one.data(), mem.at(0), 4);
    comm.barrier();  // includes fence_all
    if (comm.rank() == 0) {
      const auto* d = reinterpret_cast<const std::int32_t*>(mem.local(0));
      EXPECT_EQ(d[2], 1 + 2 + 3 + 4 + 5 + 6);
    }
    comm.barrier();
  });
}

TEST(AccTypes, MisalignedTargetRejected) {
  World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 auto& mem = comm.malloc_collective(64);
                 double v = 1.0;
                 comm.acc_t<double>(1.0, &v, mem.at(1).offset(4), 1);
               }),
               Error);
}

}  // namespace
}  // namespace pgasq::armci
