// The post-run communication report: content sanity and histogram
// plumbing through CommStats.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "core/report.hpp"

namespace pgasq::armci {
namespace {

TEST(Report, ContainsTheRunsTraffic) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(8192);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(8192));
    const int peer = (comm.rank() + 1) % comm.nprocs();
    comm.put(buf, mem.at(peer), 4096);
    comm.get(mem.at(peer), buf, 64);
    std::vector<double> v(8, 1.0);
    comm.acc(1.0, v.data(), mem.at(peer), 8);
    comm.fetch_add(mem.at(0).offset(8000), 1);
    comm.barrier();
  });
  ReportOptions opt;
  opt.include_per_rank = true;
  const std::string report = render_report(world, opt);
  EXPECT_NE(report.find("pgasq communication report"), std::string::npos);
  EXPECT_NE(report.find("4 ranks"), std::string::npos);
  EXPECT_NE(report.find("rmw (fetch&add etc.)"), std::string::npos);
  EXPECT_NE(report.find("put sizes (log2 buckets):"), std::string::npos);
  EXPECT_NE(report.find("fence calls"), std::string::npos);
  // Per-rank table lists rank 0..3.
  EXPECT_NE(report.find("rank"), std::string::npos);
}

TEST(Report, HistogramsCountEveryOperation) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1 << 16);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(1 << 16));
    if (comm.rank() == 0) {
      comm.put(buf, mem.at(1), 100);
      comm.put(buf, mem.at(1), 5000);
      comm.get(mem.at(1), buf, 256);
      EXPECT_EQ(comm.stats().put_sizes.total(), 2u);
      EXPECT_EQ(comm.stats().get_sizes.total(), 1u);
    }
    comm.barrier();
  });
  const CommStats total = world.total_stats();
  EXPECT_EQ(total.put_sizes.total(), 2u);
  EXPECT_EQ(total.get_sizes.total(), 1u);
}

TEST(RegionCachePolicy, LruEvictsByRecencyLfuByFrequency) {
  // Direct unit check of the two policies over the same access trace.
  auto region = [](std::uint64_t id) {
    static std::byte arena[1 << 14];
    return pami::MemoryRegion{1, arena + id * 128, 64, id};
  };
  for (const auto policy : {CacheReplacement::kLfu, CacheReplacement::kLru}) {
    RegionCache cache(2, policy);
    cache.insert(1, region(1));
    cache.insert(1, region(2));
    // Heat region 1, then touch region 2 last.
    for (int i = 0; i < 5; ++i) cache.lookup(1, region(1).base, 8);
    cache.lookup(1, region(2).base, 8);
    cache.insert(1, region(3));  // forces an eviction
    if (policy == CacheReplacement::kLfu) {
      // 2 had lower frequency: evicted despite being recent.
      EXPECT_TRUE(cache.lookup(1, region(1).base, 8).has_value());
      EXPECT_FALSE(cache.lookup(1, region(2).base, 8).has_value());
    } else {
      // 1 was less recent at eviction time? No: 1 was touched before 2,
      // so LRU evicts 1.
      EXPECT_FALSE(cache.lookup(1, region(1).base, 8).has_value());
      EXPECT_TRUE(cache.lookup(1, region(2).base, 8).has_value());
    }
  }
}

TEST(RegionCachePolicy, WorldOptionSelectsPolicy) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.armci.region_cache_policy = CacheReplacement::kLru;
  World world(cfg);
  world.spmd([](Comm& comm) {
    EXPECT_EQ(comm.region_cache().policy(), CacheReplacement::kLru);
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
