// Property test: a randomized storm of one-sided operations checked
// against a shadow reference model.
//
// Every rank owns a disjoint WRITER SLICE inside every target's slab
// (so cross-rank writes never overlap) and mirrors each of its own
// operations into a local reference copy. Within a slice the generator
// respects ARMCI's location-consistency contract: reads may follow
// writes freely (the runtime fences internally), but switching between
// put-style and accumulate-style writes to the same bytes requires a
// fence — the same rule applications follow. After a global fence +
// barrier the remote memory must equal the reference bytes exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/comm.hpp"
#include "core/strided.hpp"
#include "util/rng.hpp"

namespace pgasq::armci {
namespace {

constexpr std::size_t kSliceDoubles = 64;
constexpr std::size_t kSliceBytes = kSliceDoubles * sizeof(double);

struct StormParams {
  int ranks;
  ProgressMode mode;
  std::uint64_t seed;
  /// rho; 1 with kAsyncThread exercises the shared-context lock path.
  int contexts = 1;
};

class OpStorm : public ::testing::TestWithParam<StormParams> {};

TEST_P(OpStorm, RemoteMemoryMatchesShadowModel) {
  const StormParams sp = GetParam();
  WorldConfig cfg;
  cfg.machine.num_ranks = sp.ranks;
  cfg.armci.progress = sp.mode;
  cfg.armci.contexts_per_rank = sp.contexts;
  World world(cfg);
  world.spmd([sp](Comm& comm) {
    const int me = comm.rank();
    const int p = comm.nprocs();
    // Slab per rank: p slices of kSliceBytes; writer w owns slice w.
    auto& mem = comm.malloc_collective(kSliceBytes * static_cast<std::size_t>(p));
    comm.barrier();

    // Shadow model: my expected contents of my slice on every target.
    std::vector<std::vector<double>> shadow(
        static_cast<std::size_t>(p), std::vector<double>(kSliceDoubles, 0.0));
    // Last write kind per target slice; switching kinds needs a fence.
    enum class Kind { kNone, kPut, kAcc };
    std::vector<Kind> last(static_cast<std::size_t>(p), Kind::kNone);

    Rng rng(sp.seed * 977 + static_cast<std::uint64_t>(me));
    auto slice_ptr = [&](int target) {
      return mem.at(target, kSliceBytes * static_cast<std::size_t>(me));
    };

    std::vector<double> scratch(kSliceDoubles);
    for (int op = 0; op < 120; ++op) {
      const int target = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
      auto& ref = shadow[static_cast<std::size_t>(target)];
      const std::size_t off =
          static_cast<std::size_t>(rng.next_below(kSliceDoubles - 4));
      const std::size_t len =
          1 + static_cast<std::size_t>(rng.next_below(
                  std::min<std::uint64_t>(kSliceDoubles - off, 16)));
      switch (rng.next_below(5)) {
        case 0: {  // contiguous put
          if (last[static_cast<std::size_t>(target)] == Kind::kAcc) {
            comm.fence(target);
          }
          last[static_cast<std::size_t>(target)] = Kind::kPut;
          for (std::size_t i = 0; i < len; ++i) {
            scratch[i] = static_cast<double>(rng.next_in(-1000, 1000));
            ref[off + i] = scratch[i];
          }
          comm.put(scratch.data(), slice_ptr(target).offset(
                                       static_cast<std::ptrdiff_t>(off * 8)),
                   len * 8);
          break;
        }
        case 1: {  // accumulate
          if (last[static_cast<std::size_t>(target)] == Kind::kPut) {
            comm.fence(target);
          }
          last[static_cast<std::size_t>(target)] = Kind::kAcc;
          const double alpha = static_cast<double>(rng.next_in(1, 3));
          for (std::size_t i = 0; i < len; ++i) {
            scratch[i] = static_cast<double>(rng.next_in(-50, 50));
            ref[off + i] += alpha * scratch[i];
          }
          comm.acc(alpha, scratch.data(),
                   slice_ptr(target).offset(static_cast<std::ptrdiff_t>(off * 8)),
                   len);
          break;
        }
        case 2: {  // strided put of 2 rows inside the slice
          if (off + 20 >= kSliceDoubles) break;
          if (last[static_cast<std::size_t>(target)] == Kind::kAcc) {
            comm.fence(target);
          }
          last[static_cast<std::size_t>(target)] = Kind::kPut;
          for (int i = 0; i < 8; ++i) {
            scratch[static_cast<std::size_t>(i)] =
                static_cast<double>(rng.next_in(0, 99));
          }
          // Two rows of 4 doubles, remote pitch 10 doubles.
          for (int r = 0; r < 2; ++r) {
            for (int c = 0; c < 4; ++c) {
              ref[off + static_cast<std::size_t>(r) * 10 +
                  static_cast<std::size_t>(c)] =
                  scratch[static_cast<std::size_t>(r * 4 + c)];
            }
          }
          comm.put_strided(
              scratch.data(),
              slice_ptr(target).offset(static_cast<std::ptrdiff_t>(off * 8)),
              StridedSpec::rect2d(2, 4 * 8, 4 * 8, 10 * 8));
          break;
        }
        case 3: {  // mid-storm read-back of a random window
          std::vector<double> got(len, 1e300);
          comm.get(slice_ptr(target).offset(static_cast<std::ptrdiff_t>(off * 8)),
                   got.data(), len * 8);
          for (std::size_t i = 0; i < len; ++i) {
            ASSERT_DOUBLE_EQ(got[i], ref[off + i])
                << "rank " << me << " target " << target << " op " << op
                << " offset " << off + i;
          }
          break;
        }
        case 4: {  // vector put of 3 scattered doubles
          if (off + 12 >= kSliceDoubles) break;
          if (last[static_cast<std::size_t>(target)] == Kind::kAcc) {
            comm.fence(target);
          }
          last[static_cast<std::size_t>(target)] = Kind::kPut;
          Comm::VectorDescriptor d;
          d.segment_bytes = 8;
          for (int s = 0; s < 3; ++s) {
            scratch[static_cast<std::size_t>(s)] =
                static_cast<double>(rng.next_in(100, 999));
            ref[off + static_cast<std::size_t>(4 * s)] =
                scratch[static_cast<std::size_t>(s)];
            d.local.push_back(
                reinterpret_cast<std::byte*>(&scratch[static_cast<std::size_t>(s)]));
            d.remote.push_back(slice_ptr(target).addr + (off + 4 * static_cast<std::size_t>(s)) * 8);
          }
          comm.put_v(target, d);
          break;
        }
      }
    }
    comm.fence_all();
    comm.barrier();

    // Final verification: every slice equals its shadow.
    for (int target = 0; target < p; ++target) {
      std::vector<double> got(kSliceDoubles);
      comm.get(slice_ptr(target), got.data(), kSliceBytes);
      for (std::size_t i = 0; i < kSliceDoubles; ++i) {
        ASSERT_DOUBLE_EQ(got[i], shadow[static_cast<std::size_t>(target)][i])
            << "rank " << me << " slice@" << target << " dbl " << i;
      }
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Storms, OpStorm,
    ::testing::Values(StormParams{2, ProgressMode::kDefault, 1, 1},
                      StormParams{5, ProgressMode::kDefault, 2, 1},
                      StormParams{8, ProgressMode::kDefault, 3, 1},
                      StormParams{4, ProgressMode::kAsyncThread, 4, 2},
                      StormParams{8, ProgressMode::kAsyncThread, 5, 2},
                      StormParams{3, ProgressMode::kAsyncThread, 6, 2},
                      // Shared-context configurations (rho = 1 with an
                      // async thread): both threads funnel through one
                      // context lock.
                      StormParams{4, ProgressMode::kAsyncThread, 7, 1},
                      StormParams{6, ProgressMode::kAsyncThread, 8, 1}));

}  // namespace
}  // namespace pgasq::armci
