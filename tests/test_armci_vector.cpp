// I/O-vector (ARMCI_PutV/GetV/AccV) operations: zero-copy and packed
// paths, correctness of scatter/gather, and accumulate semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

WorldConfig make_cfg(int ranks, std::size_t max_regions = static_cast<std::size_t>(-1)) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.machine.max_memregions_per_rank = max_regions;
  return cfg;
}

/// Builds a descriptor over `count` segments scattered through the
/// remote slab with irregular spacing.
Comm::VectorDescriptor scatter_descriptor(std::byte* local_base,
                                          std::byte* remote_base,
                                          std::size_t seg_bytes, int count) {
  Comm::VectorDescriptor d;
  d.segment_bytes = seg_bytes;
  for (int i = 0; i < count; ++i) {
    d.local.push_back(local_base + static_cast<std::size_t>(i) * seg_bytes);
    // Irregular remote spacing: seg, gap, seg, bigger gap, ...
    d.remote.push_back(remote_base +
                       static_cast<std::size_t>(i) * (2 * seg_bytes + 16) + 8);
  }
  return d;
}

class VectorPaths : public ::testing::TestWithParam<bool> {};

TEST_P(VectorPaths, PutThenGetRoundTripsScatteredSegments) {
  const bool force_packed = GetParam();
  World world(make_cfg(2, force_packed ? 0 : static_cast<std::size_t>(-1)));
  world.spmd([force_packed](Comm& comm) {
    constexpr std::size_t kSeg = 48;
    constexpr int kCount = 9;
    auto& mem = comm.malloc_collective(4096);
    static std::byte local_store[2][1024];
    std::byte* lbuf = local_store[comm.rank()];
    if (!force_packed) {
      lbuf = static_cast<std::byte*>(comm.malloc_local(1024));
    }
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < kSeg * kCount; ++i) {
        lbuf[i] = static_cast<std::byte>((3 * i + 1) % 251);
      }
      auto desc = scatter_descriptor(lbuf, mem.at(1).addr, kSeg, kCount);
      comm.put_v(1, desc);
      comm.fence(1);
      if (force_packed) {
        EXPECT_GE(comm.stats().packed_ops, 1u);
      } else {
        EXPECT_EQ(comm.stats().zero_copy_chunks, static_cast<std::uint64_t>(kCount));
      }
      // Read back through get_v into a fresh buffer.
      std::vector<std::byte> back(kSeg * kCount, std::byte{0});
      Comm::VectorDescriptor rdesc = desc;
      for (int i = 0; i < kCount; ++i) {
        rdesc.local[static_cast<std::size_t>(i)] =
            back.data() + static_cast<std::size_t>(i) * kSeg;
      }
      comm.get_v(1, rdesc);
      for (std::size_t i = 0; i < back.size(); ++i) {
        ASSERT_EQ(back[i], static_cast<std::byte>((3 * i + 1) % 251)) << i;
      }
      // Gap bytes between segments stay untouched.
      std::byte probe = std::byte{0};
      comm.get(mem.at(1).offset(0), &probe, 1);  // before first segment
      EXPECT_EQ(probe, std::byte{0});
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(ZeroCopyAndPacked, VectorPaths, ::testing::Bool());

TEST(Vector, AccumulateSums) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(double) * 64);
    auto* lbuf = reinterpret_cast<double*>(comm.malloc_local(sizeof(double) * 16));
    if (comm.rank() == 0) {
      for (int i = 0; i < 16; ++i) lbuf[i] = i + 1.0;
      Comm::VectorDescriptor d;
      d.segment_bytes = sizeof(double) * 4;
      for (int s = 0; s < 4; ++s) {
        d.local.push_back(reinterpret_cast<std::byte*>(lbuf + 4 * s));
        d.remote.push_back(mem.at(1).addr + sizeof(double) * 8 * static_cast<std::size_t>(s));
      }
      comm.acc_v(2.0, 1, d);
      comm.acc_v(1.0, 1, d);
      comm.fence(1);
      std::vector<double> all(64);
      comm.get(mem.at(1), all.data(), sizeof(double) * 64);
      for (int s = 0; s < 4; ++s) {
        for (int k = 0; k < 4; ++k) {
          EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(8 * s + k)],
                           3.0 * (4 * s + k + 1));
        }
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(8 * s + 5)], 0.0);
      }
    }
    comm.barrier();
  });
}

TEST(Vector, NonBlockingHandleCompletes) {
  World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1024);
    auto* lbuf = static_cast<std::byte*>(comm.malloc_local(512));
    if (comm.rank() == 0) {
      Handle h;
      for (int t = 1; t < comm.nprocs(); ++t) {
        Comm::VectorDescriptor d;
        d.segment_bytes = 32;
        for (int s = 0; s < 4; ++s) {
          d.local.push_back(lbuf + 32 * s);
          d.remote.push_back(mem.at(t).addr + 64 * s);
        }
        comm.nb_put_v(t, d, h);
      }
      EXPECT_FALSE(h.done());
      comm.wait(h);
      EXPECT_TRUE(h.done());
    }
    comm.barrier();
  });
}

TEST(Vector, ValidationRejectsBadDescriptors) {
  World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 auto& mem = comm.malloc_collective(64);
                 Comm::VectorDescriptor d;
                 d.segment_bytes = 0;  // invalid
                 d.local.push_back(mem.local(comm.rank()));
                 d.remote.push_back(mem.at(0).addr);
                 comm.put_v(0, d);
               }),
               Error);
}

TEST(Vector, GetAfterAccVForcesInternalFence) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(double) * 8);
    if (comm.rank() == 0) {
      double v[4] = {1, 1, 1, 1};
      Comm::VectorDescriptor d;
      d.segment_bytes = sizeof(double) * 4;
      d.local.push_back(reinterpret_cast<std::byte*>(v));
      d.remote.push_back(mem.at(1).addr);
      Handle h;
      comm.nb_acc_v(1.0, 1, d, h);
      double back[4] = {};
      comm.get(mem.at(1), back, sizeof back);
      EXPECT_DOUBLE_EQ(back[2], 1.0) << "get must observe the acc_v";
      comm.wait(h);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
