// Stencil proxy: determinism, conservation-style sanity, and mode
// independence of the physics.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "core/comm.hpp"

namespace pgasq::apps {
namespace {

armci::WorldConfig make_cfg(int ranks, armci::ProgressMode mode) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.armci.progress = mode;
  if (mode == armci::ProgressMode::kAsyncThread) cfg.armci.contexts_per_rank = 2;
  return cfg;
}

TEST(Stencil, ResidualIndependentOfProgressMode) {
  StencilConfig scfg;
  scfg.tile = 16;
  scfg.iterations = 5;
  armci::World d(make_cfg(4, armci::ProgressMode::kDefault));
  const auto rd = run_stencil(d, scfg);
  armci::World at(make_cfg(4, armci::ProgressMode::kAsyncThread));
  const auto rat = run_stencil(at, scfg);
  EXPECT_NEAR(rd.residual, rat.residual, 1e-9);
  EXPECT_GT(rd.residual, 0.0);
  EXPECT_EQ(rd.halo_bytes, rat.halo_bytes);
}

TEST(Stencil, DiffusionSpreadsTheField) {
  // More iterations => heat spreads => sum of squares (residual proxy)
  // strictly decreases while the mean is conserved by the 5-point
  // average with periodic halos.
  StencilConfig one;
  one.tile = 16;
  one.iterations = 1;
  StencilConfig many = one;
  many.iterations = 8;
  armci::World w1(make_cfg(4, armci::ProgressMode::kDefault));
  armci::World w2(make_cfg(4, armci::ProgressMode::kDefault));
  const auto r1 = run_stencil(w1, one);
  const auto r8 = run_stencil(w2, many);
  EXPECT_LT(r8.residual, r1.residual);
}

TEST(Stencil, DeterministicAcrossRuns) {
  StencilConfig scfg;
  scfg.tile = 12;
  scfg.iterations = 3;
  armci::World a(make_cfg(9, armci::ProgressMode::kDefault));
  armci::World b(make_cfg(9, armci::ProgressMode::kDefault));
  const auto ra = run_stencil(a, scfg);
  const auto rb = run_stencil(b, scfg);
  EXPECT_EQ(ra.wall_time, rb.wall_time);
  EXPECT_DOUBLE_EQ(ra.residual, rb.residual);
}

TEST(Stencil, HaloGetsAreRdmaNotFallback) {
  StencilConfig scfg;
  scfg.tile = 16;
  scfg.iterations = 2;
  armci::World world(make_cfg(4, armci::ProgressMode::kDefault));
  const auto r = run_stencil(world, scfg);
  EXPECT_GT(r.stats.rdma_gets + r.stats.typed_ops + r.stats.zero_copy_chunks, 0u);
  EXPECT_EQ(r.stats.fallback_gets, 0u) << "halo gets must ride RDMA";
}

}  // namespace
}  // namespace pgasq::apps
