// Unit tests for the discrete-event engine and fibers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace pgasq::sim {
namespace {

using namespace pgasq::literals;

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, SameTimeEventsFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, RejectsPastEventsAndNegativeDelay) {
  Engine engine;
  engine.schedule_at(10, [&] {
    EXPECT_THROW(engine.schedule_at(5, [] {}), Error);
    EXPECT_THROW(engine.schedule_after(-1, [] {}), Error);
  });
  engine.run();
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(kInvalidEvent));
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, NestedScheduling) {
  Engine engine;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) engine.schedule_after(1, recur);
  };
  engine.schedule_at(0, recur);
  engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(engine.now(), 4);
}

TEST(Fiber, SleepAdvancesVirtualTime) {
  Engine engine;
  Time woke = -1;
  engine.spawn("sleeper", [&] {
    engine.sleep_for(5_us);
    woke = engine.now();
    engine.sleep_until(20_us);
    EXPECT_EQ(engine.now(), 20_us);
  });
  engine.run();
  EXPECT_EQ(woke, 5_us);
  EXPECT_EQ(engine.live_fibers(), 0u);
}

TEST(Fiber, SuspendResumeHandshake) {
  Engine engine;
  Fiber* worker = nullptr;
  std::vector<std::string> log;
  worker = &engine.spawn("worker", [&] {
    log.push_back("w:start");
    engine.suspend();
    log.push_back("w:resumed@" + std::to_string(engine.now()));
  });
  engine.spawn("controller", [&] {
    engine.sleep_for(100);
    log.push_back("c:resume");
    engine.resume(*worker, 50);
  });
  engine.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "w:start");
  EXPECT_EQ(log[1], "c:resume");
  EXPECT_EQ(log[2], "w:resumed@150");
}

TEST(Fiber, ManyFibersInterleaveDeterministically) {
  // Two identical runs must produce identical traces.
  auto run_once = [] {
    Engine engine;
    std::vector<int> trace;
    for (int f = 0; f < 8; ++f) {
      engine.spawn("f" + std::to_string(f), [&trace, &engine, f] {
        for (int i = 0; i < 5; ++i) {
          engine.sleep_for((f + 1) * 10);
          trace.push_back(f * 100 + i);
        }
      });
    }
    engine.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Fiber, ExceptionPropagatesToRun) {
  Engine engine;
  engine.spawn("thrower", [] { throw Error("boom from fiber"); });
  try {
    engine.run();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Fiber, DeadlockDetected) {
  Engine engine;
  engine.spawn("stuck", [&] { engine.suspend(); });
  try {
    engine.run();
    FAIL() << "expected deadlock error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("stuck"), std::string::npos);
  }
}

TEST(Fiber, YieldLetsSameTimeEventsRun) {
  Engine engine;
  std::vector<int> order;
  engine.spawn("y", [&] {
    engine.schedule_after(0, [&] { order.push_back(1); });
    engine.yield();
    order.push_back(2);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Fiber, DoubleResumeRejected) {
  Engine engine;
  Fiber* w = nullptr;
  w = &engine.spawn("w", [&] { engine.suspend(); });
  engine.spawn("c", [&] {
    engine.sleep_for(1);
    engine.resume(*w);
    EXPECT_THROW(engine.resume(*w), Error);  // already ready
  });
  engine.run();
}

TEST(Fiber, SleepOutsideFiberRejected) {
  Engine engine;
  EXPECT_THROW(engine.sleep_for(1), Error);
  EXPECT_THROW(engine.suspend(), Error);
}

TEST(Fiber, StackTooSmallRejected) {
  Engine engine;
  EXPECT_THROW(engine.spawn("tiny", [] {}, 1024), Error);
}

TEST(Fiber, CurrentTracksRunningFiber) {
  Engine engine;
  EXPECT_EQ(engine.current(), nullptr);
  engine.spawn("me", [&] {
    ASSERT_NE(engine.current(), nullptr);
    EXPECT_EQ(engine.current()->name(), "me");
  });
  engine.run();
  EXPECT_EQ(engine.current(), nullptr);
}

}  // namespace
}  // namespace pgasq::sim
