// Sharded key-value service (src/kvs): operation correctness at prime
// rank counts, CAS-version write serialization under contention,
// bitwise run-to-run determinism, transparency under packet loss and
// corruption, fail-stop durability (zero lost acked writes, faa
// exactly-once), report integration, and config typo rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/comm.hpp"
#include "core/report.hpp"
#include "core/report_json.hpp"
#include "fault/fault.hpp"
#include "kvs/kvs.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace pgasq::armci {
namespace {

WorldConfig world_of(int ranks) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  return cfg;
}

kvs::KvConfig small_mix() {
  kvs::KvConfig kc;
  kc.keys = 256;
  kc.requests = 24;
  kc.get_ratio = 0.5;
  kc.faa_ratio = 0.2;
  kc.zipf_theta = 0.99;
  return kc;
}

// Direct put/get/faa semantics at prime rank counts, where the
// hash-sharding never divides evenly: every rank writes one key, reads
// its neighbour's key back (version 2, the writer's stamp), misses on
// a never-written key, and the faa counters sum exactly once.
TEST(Kvs, PutGetFaaAcrossPrimeRanks) {
  for (const int n : {7, 13}) {
    World world(world_of(n));
    kvs::KvConfig kc;
    kc.keys = 64;
    std::vector<kvs::KvStats> st(static_cast<std::size_t>(n));
    std::vector<std::uint64_t> got_version(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> got_stamp(static_cast<std::size_t>(n), 0);
    std::vector<char> miss_ok(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> counters(static_cast<std::size_t>(n), 0);
    world.spmd([&](Comm& comm) {
      const auto me = static_cast<std::size_t>(comm.rank());
      kvs::KvStore store(comm, kc);
      const std::uint64_t stamp = (static_cast<std::uint64_t>(me + 1) << 32) | 7;
      EXPECT_EQ(store.put(static_cast<std::int64_t>(me), stamp, st[me]), 2u);
      store.faa(60, static_cast<std::int64_t>(me + 1), st[me]);
      comm.barrier();
      const auto peer = static_cast<std::size_t>((comm.rank() + 1) % n);
      std::uint64_t v = 0, s = 0;
      EXPECT_TRUE(store.get(static_cast<std::int64_t>(peer), &v, &s, st[me]));
      got_version[me] = v;
      got_stamp[me] = s;
      std::uint64_t mv = 0, ms = 0;
      miss_ok[me] = !store.get(63, &mv, &ms, st[me]) ? 1 : 0;
      comm.barrier();
      counters[me] = store.local_counter_sum();
    });
    std::uint64_t counter_total = 0;
    std::uint64_t torn = 0;
    for (int r = 0; r < n; ++r) {
      const auto i = static_cast<std::size_t>(r);
      const auto peer = static_cast<std::uint64_t>((r + 1) % n);
      EXPECT_EQ(got_version[i], 2u) << "rank " << r << " of " << n;
      EXPECT_EQ(got_stamp[i], (peer + 1) << 32 | 7) << "rank " << r;
      EXPECT_EQ(miss_ok[i], 1) << "rank " << r;
      counter_total += counters[i];
      torn += st[i].torn_reads;
    }
    // faa is exactly-once: sum of all deltas, wherever key 60 hashed.
    EXPECT_EQ(counter_total, static_cast<std::uint64_t>(n) * (n + 1) / 2);
    EXPECT_EQ(torn, 0u);
  }
}

// All ranks hammer puts on ONE key: the version CAS must serialize
// them — the final version is exactly 2x the number of acked puts
// (insert publishes 2, each update adds 2), and somebody must have
// lost a CAS race along the way.
TEST(Kvs, CasRaceSerializesWritersOnOneKey) {
  const int n = 7;
  const std::int64_t reps = 10;
  World world(world_of(n));
  kvs::KvConfig kc;
  kc.keys = 8;
  std::vector<kvs::KvStats> st(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> final_version(static_cast<std::size_t>(n), 0);
  world.spmd([&](Comm& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    kvs::KvStore store(comm, kc);
    for (std::int64_t i = 0; i < reps; ++i) {
      const std::uint64_t stamp =
          (static_cast<std::uint64_t>(me + 1) << 32) |
          static_cast<std::uint64_t>(i + 1);
      store.put(0, stamp, st[me]);
    }
    comm.barrier();
    std::uint64_t v = 0, s = 0;
    ASSERT_TRUE(store.get(0, &v, &s, st[me]));
    final_version[me] = v;
  });
  std::uint64_t lost = 0, torn = 0;
  for (int r = 0; r < n; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(final_version[i], 2u * static_cast<std::uint64_t>(n) * reps);
    lost += st[i].cas_lost;
    torn += st[i].torn_reads;
  }
  EXPECT_GT(lost, 0u) << "7 writers on one key must race at least once";
  EXPECT_EQ(torn, 0u);
}

// The whole workload is a pure function of the seed: two identical
// runs must agree bit-for-bit — shard CRCs (slot versions, tags,
// counters, values), op counts, and virtual-time throughput.
TEST(Kvs, WorkloadIsBitwiseDeterministic) {
  const kvs::KvConfig kc = small_mix();
  auto run = [&] {
    World world(world_of(13));
    return kvs::run_workload(world, kc);
  };
  const kvs::KvResult a = run();
  const kvs::KvResult b = run();
  ASSERT_EQ(a.shard_crcs.size(), b.shard_crcs.size());
  EXPECT_EQ(a.shard_crcs, b.shard_crcs);
  EXPECT_EQ(a.acked_ops, b.acked_ops);
  EXPECT_EQ(a.total.cas_lost, b.total.cas_lost);
  EXPECT_EQ(a.total.probe_steps, b.total.probe_steps);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
  EXPECT_EQ(a.total.get_lat.quantile(0.99), b.total.get_lat.quantile(0.99));
  EXPECT_EQ(a.lost_acked, 0u);
  EXPECT_EQ(a.torn_reads, 0u);
  EXPECT_GT(a.acked_ops, 0u);
}

// Packet loss + silent corruption underneath the store must be fully
// transparent: with conflict-free keys (single writer each) the final
// shard state is a pure function of the op stream, so the CRCs must
// match the fault-free run byte for byte, with zero torn reads and
// zero lost acked writes.
TEST(Kvs, LossAndCorruptionAreTransparent) {
  kvs::KvConfig kc = small_mix();
  kc.conflict_free = true;
  kc.keys = 256;  // >= ranks, full residue classes
  auto run = [&](bool faulty) {
    WorldConfig cfg = world_of(13);
    if (faulty) {
      cfg.machine.fault.drop_prob = 0.01;
      cfg.machine.fault.corrupt_prob = 0.01;
    }
    World world(cfg);
    return kvs::run_workload(world, kc);
  };
  const kvs::KvResult clean = run(false);
  const kvs::KvResult faulty = run(true);
  EXPECT_EQ(clean.shard_crcs, faulty.shard_crcs);
  EXPECT_EQ(clean.acked_ops, faulty.acked_ops);
  EXPECT_EQ(faulty.torn_reads, 0u);
  EXPECT_EQ(faulty.lost_acked, 0u);
  EXPECT_EQ(faulty.faa_applied, faulty.faa_expected);
}

// A node dies mid-traffic while shards checkpoint to buddies: the
// survivors shrink, roll back, replay their acked op logs, and the
// audit must find zero lost acked writes and exactly-once faa.
TEST(Kvs, FailStopLosesNoAckedWrites) {
  kvs::KvConfig kc;
  kc.keys = 512;
  kc.requests = 32;
  kc.get_ratio = 0.3;
  kc.faa_ratio = 0.2;
  kc.checkpoint_every = 8;
  // Keep the traffic window far past the ~200 us liveness detection
  // delay so the death is declared mid-traffic, not in the teardown.
  kc.think_us = 25.0;

  WorldConfig base;
  base.machine.num_ranks = 8;
  base.machine.ranks_per_node = 1;
  base.machine.dims = topo::Coord5{2, 2, 2, 1, 1};

  Time death_at = 0;
  {
    World world(base);
    const kvs::KvResult clean = kvs::run_workload(world, kc);
    ASSERT_GT(clean.traffic_end, clean.traffic_begin);
    death_at = clean.traffic_begin +
               (clean.traffic_end - clean.traffic_begin) * 55 / 100;
  }
  WorldConfig cfg = base;
  cfg.machine.fault.node_fails.push_back({3, death_at});
  World world(cfg);
  const kvs::KvResult r = kvs::run_workload(world, kc);
  EXPECT_EQ(r.survivors, 7);
  EXPECT_GE(r.recoveries, 1);
  EXPECT_GT(r.checkpoints, 0u);
  EXPECT_GT(r.total.replayed_ops, 0u);
  EXPECT_EQ(r.lost_acked, 0u);
  EXPECT_EQ(r.torn_reads, 0u);
  EXPECT_EQ(r.faa_expected, r.faa_applied)
      << "faa counters must land on the exactly-once expectation";
  ASSERT_FALSE(r.events.empty());
  EXPECT_EQ(r.events.front().dead_ranks, std::vector<int>{3});
}

// export_metrics lands in both report renderers: the text report's
// application-metrics section and the JSON metrics array.
TEST(Kvs, MetricsRenderInTextAndJsonReports) {
  kvs::KvConfig kc = small_mix();
  kc.requests = 8;
  World world(world_of(7));
  const kvs::KvResult r = kvs::run_workload(world, kc);
  kvs::export_metrics(world.app_metrics(), r, {{"mix", "zipfian"}});

  const std::string text = render_report(world);
  EXPECT_NE(text.find("kvs.acked_ops"), std::string::npos) << text;
  EXPECT_NE(text.find("kvs.throughput_mops"), std::string::npos);

  const std::string json = render_json_report(world).dump();
  EXPECT_NE(json.find("kvs.latency_ns"), std::string::npos);
  EXPECT_NE(json.find("\"mix\""), std::string::npos);
  EXPECT_NE(json.find("kvs.lost_acked_writes"), std::string::npos);
}

// kvs.* is reject_unknown-checked with a typo suggestion, matching the
// fault./ft./integrity. namespaces.
TEST(Kvs, ConfigRejectsUnknownKeysWithSuggestion) {
  Config cfg;
  cfg.set("kvs.get_ration", "0.5");
  try {
    kvs::KvConfig::from_config(cfg);
    FAIL() << "near-miss key must be rejected";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kvs.get_ration"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean kvs.get_ratio?"), std::string::npos)
        << what;
  }
  Config ok;
  ok.set("kvs.get_ratio", "0.25");
  EXPECT_DOUBLE_EQ(kvs::KvConfig::from_config(ok).get_ratio, 0.25);
}

}  // namespace
}  // namespace pgasq::armci
