// End-to-end smoke tests over the full stack: sim engine -> torus ->
// network -> PAMI -> ARMCI -> GA. Fast configurations; deeper
// per-module coverage lives in the sibling test files.
#include <gtest/gtest.h>

#include "apps/counter_kernel.hpp"
#include "apps/scf.hpp"
#include "core/comm.hpp"
#include "ga/global_array.hpp"

namespace pgasq {
namespace {

using armci::Comm;
using armci::World;
using armci::WorldConfig;

WorldConfig small_world(int ranks, armci::ProgressMode mode,
                        int contexts = 1) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.machine.ranks_per_node = 1;
  cfg.armci.progress = mode;
  cfg.armci.contexts_per_rank = contexts;
  return cfg;
}

TEST(Smoke, PutGetRoundTrip) {
  World world(small_world(2, armci::ProgressMode::kDefault));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1024);
    if (comm.rank() == 0) {
      std::vector<double> src(16);
      for (int i = 0; i < 16; ++i) src[static_cast<std::size_t>(i)] = i * 1.5;
      comm.put(src.data(), mem.at(1), sizeof(double) * 16);
      comm.fence(1);
      std::vector<double> back(16, 0.0);
      comm.get(mem.at(1), back.data(), sizeof(double) * 16);
      for (int i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], i * 1.5);
      }
    }
    comm.barrier();
  });
  EXPECT_GT(world.elapsed(), 0);
}

TEST(Smoke, FetchAddSerializes) {
  World world(small_world(4, armci::ProgressMode::kDefault));
  world.spmd([](Comm& comm) {
    ga::SharedCounter counter(comm);
    comm.barrier();
    std::int64_t got = 0;
    for (int i = 0; i < 5; ++i) got = counter.next();
    (void)got;
    comm.barrier();
    EXPECT_EQ(counter.read(), 4 * 5);
    comm.barrier();
  });
}

TEST(Smoke, AsyncThreadWorldRuns) {
  WorldConfig cfg = small_world(4, armci::ProgressMode::kAsyncThread, 2);
  World world(cfg);
  world.spmd([](Comm& comm) {
    ga::SharedCounter counter(comm);
    comm.barrier();
    for (int i = 0; i < 3; ++i) counter.next();
    comm.barrier();
    EXPECT_EQ(counter.read(), 4 * 3);
    comm.barrier();
  });
}

TEST(Smoke, GlobalArrayPatchRoundTrip) {
  World world(small_world(4, armci::ProgressMode::kDefault));
  world.spmd([](Comm& comm) {
    ga::GlobalArray a(comm, 32, 32);
    a.fill_local([](std::int64_t i, std::int64_t j) {
      return static_cast<double>(i * 100 + j);
    });
    a.sync();
    // Every rank reads a patch spanning block boundaries.
    std::vector<double> buf(10 * 10, -1.0);
    a.get(11, 21, 11, 21, buf.data(), 10);
    for (int r = 0; r < 10; ++r) {
      for (int c = 0; c < 10; ++c) {
        EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(r * 10 + c)],
                         (11 + r) * 100 + (11 + c));
      }
    }
    comm.barrier();
  });
}

TEST(Smoke, CounterKernelRuns) {
  apps::CounterKernelConfig kcfg;
  kcfg.ops_per_rank = 4;
  World world(small_world(4, armci::ProgressMode::kDefault));
  const auto result = apps::run_counter_kernel(world, kcfg);
  EXPECT_EQ(result.total_ops, 3u * 4u);
  EXPECT_EQ(result.final_value, 3 * 4);
  EXPECT_GT(result.avg_latency_us, 0.0);
}

TEST(Smoke, TinyScfChecksumMatchesAcrossModes) {
  apps::ScfConfig scf;
  scf.nbf = 24;
  scf.block = 4;
  scf.iterations = 1;
  scf.mean_task_compute = from_us(50);

  World d_world(small_world(4, armci::ProgressMode::kDefault));
  const auto d = apps::run_scf(d_world, scf);

  World at_world(small_world(4, armci::ProgressMode::kAsyncThread, 2));
  const auto at = apps::run_scf(at_world, scf);

  EXPECT_EQ(d.tasks_executed, at.tasks_executed);
  EXPECT_NEAR(d.fock_checksum, at.fock_checksum, 1e-9);
  EXPECT_GT(d.fock_checksum, 0.0);
}

}  // namespace
}  // namespace pgasq
