// ARMCI contiguous RMA: correctness of put/get/acc across protocol
// paths (RDMA and fall-back), non-blocking handles, and self/intranode
// transfers. Parameterized across message sizes and progress modes.
#include <gtest/gtest.h>

#include <vector>

#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

WorldConfig make_cfg(int ranks, ProgressMode mode = ProgressMode::kDefault,
                     int contexts = 1, int ranks_per_node = 1) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.machine.ranks_per_node = ranks_per_node;
  cfg.armci.progress = mode;
  cfg.armci.contexts_per_rank = contexts;
  return cfg;
}

struct SizeMode {
  std::size_t bytes;
  ProgressMode mode;
};

class ContigSweep : public ::testing::TestWithParam<SizeMode> {};

TEST_P(ContigSweep, PutThenGetRoundTrips) {
  const auto [bytes, mode] = GetParam();
  World world(make_cfg(2, mode, mode == ProgressMode::kAsyncThread ? 2 : 1));
  world.spmd([bytes = bytes](Comm& comm) {
    auto& mem = comm.malloc_collective(bytes);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(bytes));
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = static_cast<std::byte>(i * 7);
      comm.put(buf, mem.at(1), bytes);
      comm.fence(1);
      std::vector<std::byte> back(bytes, std::byte{0});
      comm.get(mem.at(1), back.data(), bytes);
      for (std::size_t i = 0; i < bytes; ++i) {
        ASSERT_EQ(back[i], static_cast<std::byte>(i * 7)) << "at byte " << i;
      }
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndModes, ContigSweep,
    ::testing::Values(SizeMode{1, ProgressMode::kDefault},
                      SizeMode{16, ProgressMode::kDefault},
                      SizeMode{255, ProgressMode::kDefault},
                      SizeMode{256, ProgressMode::kDefault},
                      SizeMode{4096, ProgressMode::kDefault},
                      SizeMode{1 << 20, ProgressMode::kDefault},
                      SizeMode{16, ProgressMode::kAsyncThread},
                      SizeMode{4096, ProgressMode::kAsyncThread},
                      SizeMode{1 << 20, ProgressMode::kAsyncThread}));

TEST(Contig, FallbackWhenRegionsUnavailable) {
  WorldConfig cfg = make_cfg(2);
  cfg.machine.max_memregions_per_rank = 0;  // every registration fails
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(512);
    std::vector<std::byte> buf(512);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i);
      comm.put(buf.data(), mem.at(1), buf.size());
      comm.fence(1);
      std::vector<std::byte> back(512, std::byte{0xFF});
      comm.get(mem.at(1), back.data(), back.size());
      for (std::size_t i = 0; i < back.size(); ++i) {
        ASSERT_EQ(back[i], static_cast<std::byte>(i));
      }
      // Both ops must have taken the fall-back path.
      EXPECT_EQ(comm.stats().rdma_puts, 0u);
      EXPECT_EQ(comm.stats().rdma_gets, 0u);
      EXPECT_EQ(comm.stats().fallback_puts, 1u);
      EXPECT_EQ(comm.stats().fallback_gets, 1u);
    }
    comm.barrier();
  });
}

TEST(Contig, RdmaPathUsedWhenRegionsExist) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(4096);
    auto* buf = comm.malloc_local(4096);
    if (comm.rank() == 0) {
      comm.put(buf, mem.at(1), 4096);
      comm.get(mem.at(1), buf, 4096);
      EXPECT_EQ(comm.stats().rdma_puts, 1u);
      EXPECT_EQ(comm.stats().rdma_gets, 1u);
      EXPECT_EQ(comm.stats().fallback_puts, 0u);
      EXPECT_EQ(comm.stats().fallback_gets, 0u);
    }
    comm.barrier();
  });
}

TEST(Contig, AccumulateAddsScaled) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(sizeof(double) * 32);
    if (comm.rank() == 1) {
      auto* d = reinterpret_cast<double*>(mem.local(1));
      for (int i = 0; i < 32; ++i) d[i] = 10.0;
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<double> src(32);
      for (int i = 0; i < 32; ++i) src[static_cast<std::size_t>(i)] = i;
      comm.acc(2.0, src.data(), mem.at(1), 32);
      comm.acc(1.0, src.data(), mem.at(1), 32);
      comm.fence(1);
      std::vector<double> back(32);
      comm.get(mem.at(1), back.data(), sizeof(double) * 32);
      for (int i = 0; i < 32; ++i) {
        EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], 10.0 + 3.0 * i);
      }
    }
    comm.barrier();
  });
}

TEST(Contig, NonBlockingHandleAggregatesAndTests) {
  World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(4096);
    auto* buf = static_cast<std::byte*>(comm.malloc_local(4096));
    if (comm.rank() == 0) {
      Handle h;
      EXPECT_TRUE(h.done());
      EXPECT_FALSE(h.used());
      for (int t = 1; t < comm.nprocs(); ++t) {
        comm.nb_put(buf, mem.at(t), 2048, h);
      }
      EXPECT_TRUE(h.used());
      comm.wait(h);
      EXPECT_TRUE(h.done());
      EXPECT_TRUE(comm.test(h));
    }
    comm.barrier();
  });
}

TEST(Contig, SelfAndIntranodeTransfers) {
  // 4 ranks on one node: the shared-memory path.
  World world(make_cfg(4, ProgressMode::kDefault, 1, /*ranks_per_node=*/4));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(1024);
    std::vector<std::byte> buf(1024, static_cast<std::byte>(comm.rank() + 1));
    // Self-put.
    comm.put(buf.data(), mem.at(comm.rank()), 1024);
    comm.fence(comm.rank());
    std::vector<std::byte> back(1024);
    comm.get(mem.at(comm.rank()), back.data(), 1024);
    EXPECT_EQ(back[0], static_cast<std::byte>(comm.rank() + 1));
    comm.barrier();
    // Neighbour (same node) put.
    const int peer = (comm.rank() + 1) % comm.nprocs();
    comm.put(buf.data(), mem.at(peer), 1024);
    comm.fence(peer);
    comm.barrier();
    comm.get(mem.at(comm.rank()), back.data(), 1024);
    const int writer = (comm.rank() + comm.nprocs() - 1) % comm.nprocs();
    EXPECT_EQ(back[5], static_cast<std::byte>(writer + 1));
    comm.barrier();
  });
}

TEST(Contig, BlockingGetSeesPrecedingPutSameRegion) {
  // Location consistency within one process's operation stream.
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(64);
    if (comm.rank() == 0) {
      double v = 42.5;
      comm.put(&v, mem.at(1), sizeof v);
      // NO explicit fence: the get itself must detect the conflicting
      // write and fence internally (S III-E).
      double back = 0;
      comm.get(mem.at(1), &back, sizeof back);
      EXPECT_DOUBLE_EQ(back, 42.5);
      EXPECT_GE(comm.stats().forced_fences, 1u);
    }
    comm.barrier();
  });
}

TEST(Contig, EndpointCreatedOncePerTarget) {
  World world(make_cfg(8));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(256);
    std::byte buf[64]{};
    if (comm.rank() == 0) {
      for (int round = 0; round < 3; ++round) {
        for (int t = 1; t < comm.nprocs(); ++t) comm.put(buf, mem.at(t), 64);
      }
      comm.fence_all();
      EXPECT_EQ(comm.stats().endpoints_created, 7u);
      EXPECT_EQ(comm.endpoint_cache().size(), 7u);
    }
    comm.barrier();
  });
}

TEST(Contig, WaitAllCoversImplicitOps) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    comm.wait_all();  // no-ops must not hang
    comm.barrier();
  });
}

TEST(Contig, StatsCountBytes) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(8192);
    auto* buf = comm.malloc_local(8192);
    if (comm.rank() == 0) {
      comm.put(buf, mem.at(1), 8192);
      comm.get(mem.at(1), buf, 100);
      EXPECT_EQ(comm.stats().bytes_put, 8192u);
      EXPECT_EQ(comm.stats().bytes_got, 100u);
      EXPECT_EQ(comm.stats().puts, 1u);
      EXPECT_EQ(comm.stats().gets, 1u);
      EXPECT_GT(comm.stats().time_in_put, 0);
      EXPECT_GT(comm.stats().time_in_get, 0);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
