// Direct unit tests for Context::advance() progress statistics:
// empty_advances accounting and the total_service_delay accumulator
// (the raw material of the Fig 9 / Fig 11 progress analyses).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "pami/machine.hpp"

namespace pgasq::pami {
namespace {

MachineConfig two_ranks() {
  MachineConfig cfg;
  cfg.num_ranks = 2;
  cfg.ranks_per_node = 1;
  return cfg;
}

void run_pair(MachineConfig cfg, std::function<void(Process&)> rank0,
              std::function<void(Process&)> rank1) {
  Machine machine(cfg);
  machine.run([&](Process& p) {
    p.create_client();
    p.create_context();
    (p.rank() == 0 ? rank0 : rank1)(p);
  });
}

TEST(ContextStats, EmptyAdvancesCounted) {
  run_pair(
      two_ranks(),
      [](Process& p) {
        Context& ctx = p.context(0);
        EXPECT_EQ(ctx.advance(), 0u);
        EXPECT_EQ(ctx.advance(), 0u);
        EXPECT_EQ(ctx.advance(), 0u);
        const ContextStats& s = ctx.stats();
        EXPECT_EQ(s.advance_calls, 3u);
        EXPECT_EQ(s.empty_advances, 3u);
        EXPECT_EQ(s.completions, 0u);
        EXPECT_EQ(s.total_service_delay, 0);
      },
      [](Process&) {});
}

TEST(ContextStats, NonEmptyAdvanceNotCountedEmpty) {
  run_pair(
      two_ranks(),
      [](Process& p) {
        p.context(0).send(Endpoint{1, 0}, 3, {}, {}, nullptr);
        p.busy(from_us(100));
      },
      [](Process& p) {
        Context& ctx = p.context(0);
        ctx.set_dispatch(3, [](Context&, const AmMessage&) {});
        p.busy(from_us(50));
        EXPECT_EQ(ctx.advance(), 1u);
        const ContextStats& s = ctx.stats();
        EXPECT_EQ(s.advance_calls, 1u);
        EXPECT_EQ(s.empty_advances, 0u);
        EXPECT_EQ(s.ams_dispatched, 1u);
      });
}

TEST(ContextStats, ServiceDelayGrowsWithNeglect) {
  // The same AM serviced after a longer compute phase must report a
  // larger service delay: delay = service start - arrival.
  Time short_delay = 0;
  Time long_delay = 0;
  for (const Time nap : {from_us(50), from_us(400)}) {
    Time* out = (nap == from_us(50)) ? &short_delay : &long_delay;
    run_pair(
        two_ranks(),
        [](Process& p) {
          p.context(0).send(Endpoint{1, 0}, 3, {}, {}, nullptr);
          p.busy(from_us(500));
        },
        [out, nap](Process& p) {
          p.context(0).set_dispatch(3, [](Context&, const AmMessage&) {});
          p.busy(nap);
          p.context(0).advance();
          *out = p.context(0).stats().total_service_delay;
        });
  }
  EXPECT_GT(short_delay, 0);
  // 350us more neglect is 350us more delay (minus jitter-free arrival).
  EXPECT_GE(long_delay - short_delay, from_us(300));
}

TEST(ContextStats, ServiceDelayMonotoneAcrossAdvances) {
  // total_service_delay is a running sum: each advance that services a
  // waiting item strictly increases it, and no advance decreases it.
  run_pair(
      two_ranks(),
      [](Process& p) {
        for (int i = 0; i < 3; ++i) {
          p.context(0).send(Endpoint{1, 0}, 3, {}, {}, nullptr);
          p.busy(from_us(100));
        }
      },
      [](Process& p) {
        Context& ctx = p.context(0);
        ctx.set_dispatch(3, [](Context&, const AmMessage&) {});
        std::vector<Time> snapshots{ctx.stats().total_service_delay};
        for (int round = 0; round < 3; ++round) {
          p.busy(from_us(120));
          const std::size_t serviced = ctx.advance();
          const Time now_total = ctx.stats().total_service_delay;
          EXPECT_GE(now_total, snapshots.back())
              << "service delay went backwards on round " << round;
          if (serviced > 0) {
            EXPECT_GT(now_total, snapshots.back())
                << "serviced a waiting item with zero recorded delay";
          }
          snapshots.push_back(now_total);
        }
        EXPECT_EQ(ctx.stats().ams_dispatched, 3u);
      });
}

}  // namespace
}  // namespace pgasq::pami
