// Unit and property tests for the 5D torus geometry, BG/Q partition
// shapes, and the ABCDET rank mapping.
#include <gtest/gtest.h>

#include <set>

#include "topo/torus.hpp"
#include "util/error.hpp"

namespace pgasq::topo {
namespace {

TEST(Torus, CoordNodeBijection) {
  Torus5D torus({2, 3, 4, 2, 2});
  std::set<int> seen;
  for (int n = 0; n < torus.num_nodes(); ++n) {
    const Coord5 c = torus.coord_of(n);
    EXPECT_EQ(torus.node_of(c), n);
    seen.insert(n);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), torus.num_nodes());
  EXPECT_EQ(torus.num_nodes(), 2 * 3 * 4 * 2 * 2);
}

TEST(Torus, HopDistanceProperties) {
  Torus5D torus({4, 4, 2, 2, 2});
  for (int a = 0; a < torus.num_nodes(); a += 7) {
    EXPECT_EQ(torus.hop_distance(a, a), 0);
    for (int b = 0; b < torus.num_nodes(); b += 5) {
      EXPECT_EQ(torus.hop_distance(a, b), torus.hop_distance(b, a));
      EXPECT_LE(torus.hop_distance(a, b), torus.diameter());
      EXPECT_GE(torus.hop_distance(a, b), a == b ? 0 : 1);
    }
  }
}

TEST(Torus, WraparoundShortens) {
  Torus5D torus({8, 1, 1, 1, 1});
  // 0 -> 7 is one hop backwards around the ring, not 7 forward.
  EXPECT_EQ(torus.hop_distance(0, 7), 1);
  EXPECT_EQ(torus.hop_distance(0, 4), 4);
  EXPECT_EQ(torus.hop_distance(0, 5), 3);
}

TEST(Torus, RouteFollowsLinksAndMatchesDistance) {
  Torus5D torus({3, 4, 2, 2, 2});
  for (int a = 0; a < torus.num_nodes(); a += 11) {
    for (int b = 0; b < torus.num_nodes(); b += 13) {
      const auto route = torus.route(a, b);
      EXPECT_EQ(static_cast<int>(route.size()), torus.hop_distance(a, b));
      int cur = a;
      int last_dim = -1;
      for (const auto& link : route) {
        EXPECT_EQ(link.from_node, cur);
        // Dimension-order: dims never decrease along the route.
        EXPECT_GE(link.dim, last_dim);
        last_dim = link.dim;
        // from/to really differ by one step in `dim` with wraparound.
        const Coord5 cf = torus.coord_of(link.from_node);
        const Coord5 ct = torus.coord_of(link.to_node);
        for (int d = 0; d < kDims; ++d) {
          if (d == link.dim) {
            EXPECT_EQ((cf[d] + link.dir + torus.dims()[d]) % torus.dims()[d], ct[d]);
          } else {
            EXPECT_EQ(cf[d], ct[d]);
          }
        }
        cur = link.to_node;
      }
      EXPECT_EQ(cur, b);
    }
  }
}

TEST(Torus, OrderedRoutesAreMinimalForAnyPermutation) {
  Torus5D torus({3, 2, 4, 2, 2});
  const std::array<int, kDims> orders[] = {
      {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}};
  for (int a = 0; a < torus.num_nodes(); a += 9) {
    for (int b = 0; b < torus.num_nodes(); b += 7) {
      for (const auto& order : orders) {
        const auto route = torus.route_ordered(a, b, order);
        EXPECT_EQ(static_cast<int>(route.size()), torus.hop_distance(a, b));
        int cur = a;
        for (const auto& link : route) {
          EXPECT_EQ(link.from_node, cur);
          cur = link.to_node;
        }
        EXPECT_EQ(cur, b);
      }
    }
  }
  EXPECT_THROW(torus.route_ordered(0, 1, {0, 1, 2, 3, 3}), Error);
}

TEST(Torus, LinkIndexUniqueInBounds) {
  Torus5D torus({2, 2, 2, 2, 2});
  std::set<int> indices;
  for (int n = 0; n < torus.num_nodes(); ++n) {
    for (int d = 0; d < kDims; ++d) {
      for (int dir : {+1, -1}) {
        const int idx = torus.link_index(Link{n, 0, d, dir});
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, torus.num_links());
        EXPECT_TRUE(indices.insert(idx).second) << "duplicate link index " << idx;
      }
    }
  }
}

TEST(Partition, PaperShapeFor128Nodes) {
  // Eq 10 of the paper: 128 = 2(A)*2(B)*4(C)*4(D)*2(E).
  const Coord5 dims = bgq_partition_dims(128);
  EXPECT_EQ(dims, (Coord5{2, 2, 4, 4, 2}));
  Torus5D torus(dims);
  // With wraparound the maximum distance is (2+2+4+4+2)/2 = 7.
  EXPECT_EQ(torus.diameter(), 7);
}

TEST(Partition, TableCoversPowersOfTwoAndThrowsOtherwise) {
  for (int n = 1; n <= 4096; n *= 2) {
    EXPECT_TRUE(has_bgq_partition(n)) << n;
    const Coord5 dims = bgq_partition_dims(n);
    int prod = 1;
    for (int d : dims) prod *= d;
    EXPECT_EQ(prod, n);
  }
  EXPECT_FALSE(has_bgq_partition(48));
  EXPECT_THROW(bgq_partition_dims(48), Error);
}

TEST(Partition, BalancedDimsFactorsAnything) {
  for (int n : {1, 6, 48, 100, 97, 360}) {
    const Coord5 dims = balanced_dims(n);
    int prod = 1;
    for (int d : dims) prod *= d;
    EXPECT_EQ(prod, n) << "n=" << n;
  }
  // 97 is prime: one fat dimension.
  const Coord5 p = balanced_dims(97);
  EXPECT_EQ(p[0], 97);
}

class MappingTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MappingTest, AbcdetBijectionAndNodePacking) {
  const auto [nodes, c] = GetParam();
  Torus5D torus(has_bgq_partition(nodes) ? bgq_partition_dims(nodes)
                                         : balanced_dims(nodes));
  RankMapping mapping(torus, c);
  EXPECT_EQ(mapping.num_ranks(), nodes * c);
  std::set<std::pair<int, int>> seen;
  for (int r = 0; r < mapping.num_ranks(); ++r) {
    const int node = mapping.node_of_rank(r);
    const int slot = mapping.slot_of_rank(r);
    EXPECT_GE(node, 0);
    EXPECT_LT(node, nodes);
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, c);
    EXPECT_EQ(mapping.rank_of(node, slot), r);
    EXPECT_TRUE(seen.insert({node, slot}).second);
  }
  // ABCDET: consecutive ranks fill a node before moving on (T fastest).
  for (int r = 0; r + 1 < mapping.num_ranks(); ++r) {
    if (mapping.slot_of_rank(r) < c - 1) {
      EXPECT_EQ(mapping.node_of_rank(r), mapping.node_of_rank(r + 1));
    } else {
      EXPECT_EQ(mapping.node_of_rank(r) + 1, mapping.node_of_rank(r + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MappingTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 16},
                                           std::pair{32, 4}, std::pair{128, 16},
                                           std::pair{6, 3}));

TEST(Mapping, RejectsBadRanksPerNode) {
  Torus5D torus({2, 1, 1, 1, 1});
  EXPECT_THROW(RankMapping(torus, 0), Error);
  EXPECT_THROW(RankMapping(torus, 65), Error);
}

}  // namespace
}  // namespace pgasq::topo
