// The async completion runtime (src/async) and the non-blocking
// collectives engine (coll::NbcEngine): then-chaining determinism
// across seeds, when_all/when_any aggregation (futures and handle
// sets), non-blocking collectives matching their blocking counterparts
// bitwise at awkward (prime) rank counts, fault transparency under
// loss + corruption, revocable-get cancellation, the
// abandoned-continuation abort, and async.* option validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "async/async.hpp"
#include "coll/coll.hpp"
#include "coll/nbc.hpp"
#include "core/world.hpp"
#include "fault/fault.hpp"
#include "util/error.hpp"

namespace pgasq {
namespace {

armci::WorldConfig make_cfg(int ranks, std::uint64_t seed = 42) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.machine.seed = seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// then() chaining: continuations run FIFO from the progress engine,
// never inline at fulfillment, and the observed order is a pure
// function of the program — identical across machine seeds.

/// Runs a chain mixing value-returning, void, and future-returning
/// continuations over real communication; returns rank 0's event log.
std::string then_chain_log(std::uint64_t seed) {
  armci::World world(make_cfg(4, seed));
  std::string log;
  world.spmd([&log](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    auto& mem = comm.malloc_collective(64);
    auto* slot = reinterpret_cast<double*>(mem.local(comm.rank()));
    slot[0] = 100.0 + comm.rank();
    comm.barrier();

    const int peer = (comm.rank() + 1) % comm.nprocs();
    double got = 0.0;
    std::string local;
    // Value chain: get -> tag -> transform -> flattened inner get.
    fut::Future<double> chain =
        rt.get(mem.at(peer), &got, sizeof(double))
            .then([&](const fut::Unit&) {
              local += "A";
              return got;
            })
            .then([&](const double& v) {
              local += "B";
              return v * 2.0;
            })
            .then([&](const double& v) {
              local += "C";
              // Future-returning continuation: then() must flatten.
              return rt.get(mem.at(peer), &got, sizeof(double))
                  .then([&local, v](const fut::Unit&) {
                    local += "D";
                    return v + 1.0;
                  });
            });
    // A second independent chain attached later must drain after the
    // continuations already queued at each step (FIFO).
    fut::Future<fut::Unit> side =
        rt.get(mem.at(peer), &got, sizeof(double)).then([&](const fut::Unit&) {
          local += "s";
        });
    rt.wait(chain);
    rt.wait(side);
    EXPECT_DOUBLE_EQ(chain.value(), (100.0 + peer) * 2.0 + 1.0);
    if (comm.rank() == 0) log = local;
    comm.barrier();
  });
  return log;
}

TEST(Fut, ThenChainingIsDeterministicAcrossSeeds) {
  const std::string a = then_chain_log(42);
  const std::string b = then_chain_log(1337);
  EXPECT_EQ(a, b) << "continuation order depends on the machine seed";
  // Every stage ran exactly once, and stage order within a chain is
  // program order.
  for (char c : {'A', 'B', 'C', 'D', 's'}) {
    EXPECT_EQ(std::count(a.begin(), a.end(), c), 1) << "stage " << c;
  }
  EXPECT_LT(a.find('A'), a.find('B'));
  EXPECT_LT(a.find('B'), a.find('C'));
  EXPECT_LT(a.find('C'), a.find('D'));
}

TEST(Fut, ContinuationsNeverRunInline) {
  armci::World world(make_cfg(2));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    bool ran = false;
    // Attaching to an already-ready future still routes the
    // continuation through the queue — nothing runs inline here.
    fut::Future<fut::Unit> f =
        fut::make_ready(rt, fut::Unit{}).then([&ran](const fut::Unit&) {
          ran = true;
        });
    EXPECT_FALSE(ran) << "continuation ran inline at attach";
    rt.wait(f);
    EXPECT_TRUE(ran);
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Aggregation: when_all / when_any over futures, the same through
// handle sets, and the n-ary Comm wait primitives underneath.

TEST(Fut, WhenAllCollectsEveryValueInOrder) {
  armci::World world(make_cfg(3));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    std::vector<fut::Promise<int>> ps;
    std::vector<fut::Future<int>> fs;
    for (int i = 0; i < 4; ++i) {
      ps.emplace_back(rt);
      fs.push_back(ps.back().future());
    }
    fut::Future<std::vector<int>> all = fut::when_all(rt, std::move(fs));
    // Fulfill out of order: values must still land at their indices.
    ps[2].fulfill(20);
    ps[0].fulfill(0);
    ps[3].fulfill(30);
    ps[1].fulfill(10);
    rt.wait(all);
    EXPECT_EQ(all.value(), (std::vector<int>{0, 10, 20, 30}));
    comm.barrier();
  });
}

TEST(Fut, WhenAnyYieldsTheFirstFulfilledIndex) {
  armci::World world(make_cfg(2));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    fut::Promise<int> a(rt), b(rt), c(rt);
    fut::Future<std::size_t> any =
        fut::when_any(rt, std::vector<fut::Future<int>>{a.future(), b.future(),
                                                        c.future()});
    b.fulfill(7);
    rt.wait(any);
    EXPECT_EQ(any.value(), 1u);
    // Late fulfillments are fine; the winner does not change.
    a.fulfill(1);
    c.fulfill(3);
    EXPECT_EQ(any.value(), 1u);
    comm.barrier();
  });
}

TEST(Fut, HandleAggregationAndNaryWaits) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    constexpr std::size_t kWords = 32;
    auto& mem = comm.malloc_collective(kWords * sizeof(double));
    auto* slot = reinterpret_cast<double*>(mem.local(comm.rank()));
    for (std::size_t i = 0; i < kWords; ++i) slot[i] = comm.rank() * 1000.0 + i;
    comm.barrier();

    // when_all through handles: one get per peer.
    std::vector<std::vector<double>> in(
        static_cast<std::size_t>(comm.nprocs()));
    std::vector<armci::Handle> hs(static_cast<std::size_t>(comm.nprocs()));
    std::vector<armci::Handle*> hps;
    for (int r = 0; r < comm.nprocs(); ++r) {
      auto& buf = in[static_cast<std::size_t>(r)];
      buf.assign(kWords, 0.0);
      comm.nb_get(mem.at(r), buf.data(), kWords * sizeof(double),
                  hs[static_cast<std::size_t>(r)]);
      hps.push_back(&hs[static_cast<std::size_t>(r)]);
    }
    rt.wait(rt.when_all(hps));
    EXPECT_TRUE(comm.test_all(hps));
    for (int r = 0; r < comm.nprocs(); ++r) {
      for (std::size_t i = 0; i < kWords; ++i) {
        ASSERT_DOUBLE_EQ(in[static_cast<std::size_t>(r)][i], r * 1000.0 + i);
      }
    }
    comm.barrier();

    // when_any + wait_some: some subset completes first; draining
    // wait_some until every handle is done must visit each exactly
    // once.
    std::vector<armci::Handle> h2(3);
    std::vector<double> b2(3 * kWords, 0.0);
    std::vector<armci::Handle*> hp2;
    for (int i = 0; i < 3; ++i) {
      const int peer = (comm.rank() + 1 + i) % comm.nprocs();
      comm.nb_get(mem.at(peer), &b2[static_cast<std::size_t>(i) * kWords],
                  kWords * sizeof(double), h2[static_cast<std::size_t>(i)]);
      hp2.push_back(&h2[static_cast<std::size_t>(i)]);
    }
    fut::Future<std::size_t> any = rt.when_any(hp2);
    rt.wait(any);
    EXPECT_LT(any.value(), 3u);
    std::vector<int> seen(3, 0);
    std::size_t done = 0;
    while (done < 3) {
      for (std::size_t idx : comm.wait_some(hp2)) {
        ASSERT_LT(idx, 3u);
        ++seen[idx];
        ++done;
      }
    }
    EXPECT_EQ(seen, (std::vector<int>{1, 1, 1}));
    EXPECT_TRUE(comm.test_all(hp2));
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Non-blocking collectives. The iallreduce pins its schedule to
// recursive doubling, so against a blocking engine forced to recdbl
// the result must be BITWISE identical — same association order, same
// pre/post-fold at non-power-of-two counts. Prime rank counts exercise
// the whole remainder machinery.

std::vector<std::uint64_t> allreduce_bits_nbc(int p, std::uint64_t seed,
                                              bool nonblocking,
                                              fault::FaultPlan plan = {}) {
  armci::WorldConfig cfg = make_cfg(p, seed);
  cfg.armci.coll.emplace_back("algo.allreduce", "recdbl");
  cfg.machine.fault = plan;
  armci::World world(cfg);
  std::vector<std::uint64_t> bits(static_cast<std::size_t>(p), 0);
  world.spmd([&](armci::Comm& comm) {
    // Association-sensitive values: the last ulps depend on fold order.
    double x = 0.1 * (comm.rank() + 1) + 1e-13 / (comm.rank() + 1);
    if (nonblocking) {
      async::Runtime& rt = async::Runtime::of(comm);
      fut::Future<fut::Unit> f =
          coll::NbcEngine::of(comm).iallreduce_sum(&x, 1);
      rt.wait(f);
    } else {
      coll::CollEngine::of(comm).allreduce_sum(&x, 1);
    }
    std::memcpy(&bits[static_cast<std::size_t>(comm.rank())], &x, sizeof(x));
    comm.barrier();
  });
  return bits;
}

TEST(Nbc, IallreduceMatchesBlockingBitwiseAtPrimeRanks) {
  for (int p : {7, 13}) {
    const auto blocking = allreduce_bits_nbc(p, 42, false);
    const auto nbc = allreduce_bits_nbc(p, 42, true);
    EXPECT_EQ(blocking, nbc) << p << " ranks: iallreduce diverged bitwise";
    // And seed-independence of the nonblocking path itself.
    EXPECT_EQ(nbc, allreduce_bits_nbc(p, 1337, true))
        << p << " ranks: iallreduce result depends on the machine seed";
  }
}

TEST(Nbc, IbcastDeliversPayloadAtPrimeRanks) {
  for (int p : {7, 13}) {
    armci::World world(make_cfg(p));
    world.spmd([](armci::Comm& comm) {
      async::Runtime& rt = async::Runtime::of(comm);
      const int root = comm.nprocs() > 2 ? 2 : 0;
      std::vector<std::byte> buf(777, std::byte{0});
      if (comm.rank() == root) {
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<std::byte>(i * 7 + 3);
        }
      }
      fut::Future<fut::Unit> f =
          coll::NbcEngine::of(comm).ibcast(buf.data(), buf.size(), root);
      rt.wait(f);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], static_cast<std::byte>(i * 7 + 3)) << "byte " << i;
      }
      comm.barrier();
    });
  }
}

TEST(Nbc, IbarrierCompletes) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    coll::NbcEngine& nbc = coll::NbcEngine::of(comm);
    fut::Future<fut::Unit> f = nbc.ibarrier();
    rt.wait(f);
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(nbc.open_ops(), 0u);
  });
}

TEST(Nbc, OpsOverlapWithOneSidedTraffic) {
  armci::World world(make_cfg(7));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    coll::NbcEngine& nbc = coll::NbcEngine::of(comm);
    auto& mem = comm.malloc_collective(256);
    auto* slot = reinterpret_cast<double*>(mem.local(comm.rank()));
    slot[0] = 1.0 + comm.rank();
    comm.barrier();

    // Two collectives in flight at once, with puts/gets interleaved
    // between initiation and completion.
    double x = 0.5 * (comm.rank() + 1);
    fut::Future<fut::Unit> red = nbc.iallreduce_sum(&x, 1);
    fut::Future<fut::Unit> bar = nbc.ibarrier();
    EXPECT_EQ(nbc.open_ops(), 2u);

    const int peer = (comm.rank() + 3) % comm.nprocs();
    double got = 0.0;
    comm.get(mem.at(peer), &got, sizeof(double));
    EXPECT_DOUBLE_EQ(got, 1.0 + peer);

    rt.wait(red);
    rt.wait(bar);
    const int p = comm.nprocs();
    EXPECT_NEAR(x, 0.5 * p * (p + 1) / 2.0, 1e-9);
    EXPECT_EQ(nbc.open_ops(), 0u);
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Fault transparency: packet loss triggers the retransmit protocol and
// silent corruption trips the integrity layer's slot checksums — the
// non-blocking schedule must re-fetch and deliver byte-identical
// results; only timings may move.

TEST(NbcFaults, LossAndCorruptionAreTransparent) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.01;
  plan.corrupt_prob = 0.005;
  ASSERT_TRUE(plan.enabled());
  for (int p : {7, 8}) {
    const auto clean = allreduce_bits_nbc(p, 42, true);
    const auto faulty = allreduce_bits_nbc(p, 42, true, plan);
    EXPECT_EQ(clean, faulty) << p << " ranks: faults changed the payload";
  }
}

// ---------------------------------------------------------------------------
// Revocable gets: revoke before the wire leg cancels outright (no
// traffic, counter ticks); the future still completes so chained work
// is never stranded.

TEST(Fut, RevokedGetCancelsBeforeInjection) {
  armci::World world(make_cfg(2));
  world.spmd([](armci::Comm& comm) {
    async::Runtime& rt = async::Runtime::of(comm);
    auto& mem = comm.malloc_collective(64);
    reinterpret_cast<double*>(mem.local(comm.rank()))[0] = 5.0 + comm.rank();
    comm.barrier();

    const auto gets_before = comm.stats().bytes_got;
    double sentinel = -1.0;
    async::RevocableGet g =
        rt.get_revocable(mem.at((comm.rank() + 1) % comm.nprocs()), &sentinel,
                         sizeof(double));
    // No progress pass has run since issue: the op is still queued
    // locally and must cancel outright.
    EXPECT_TRUE(rt.revoke(g));
    EXPECT_EQ(rt.gets_revoked(), 1u);
    rt.wait(g.future);
    EXPECT_TRUE(g.handle.done());
    EXPECT_DOUBLE_EQ(sentinel, -1.0) << "revoked get wrote its destination";
    EXPECT_EQ(comm.stats().bytes_got, gets_before)
        << "revoked get generated wire traffic";

    // A second revoke of the same op reports failure, not a double
    // completion.
    EXPECT_FALSE(comm.revoke_get(g.op));
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Misuse must abort loudly.

TEST(Fut, AbandonedContinuationAbortsAtFinalize) {
  try {
    armci::World world(make_cfg(2));
    world.spmd([](armci::Comm& comm) {
      async::Runtime& rt = async::Runtime::of(comm);
      // A continuation chained on a promise nobody ever fulfills:
      // finalize must refuse to drop it silently.
      auto p = std::make_shared<fut::Promise<int>>(rt);
      p->future().then([](const int&) {});
      comm.barrier();
    });
    FAIL() << "expected the abandoned-continuation abort";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("abandoned continuations"),
              std::string::npos)
        << e.what();
  }
}

TEST(Fut, MisspelledAsyncOptionIsRejected) {
  armci::WorldConfig cfg = make_cfg(2);
  cfg.armci.async.emplace_back("scf_overlp", "1");  // typo
  try {
    armci::World world(cfg);
    world.spmd([](armci::Comm& comm) { async::Runtime::of(comm); });
    FAIL() << "expected the unknown-option abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("async.scf_overlp"), std::string::npos) << what;
    EXPECT_NE(what.find("scf_overlap"), std::string::npos)
        << "the error should name the known keys";
  }
}

}  // namespace
}  // namespace pgasq
