// Unit tests for the endpoint cache and the LFU remote-region cache,
// plus integration of the region-query miss protocol.
#include <gtest/gtest.h>

#include "core/caches.hpp"
#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

pami::MemoryRegion region(RankId owner, std::uint64_t id, std::size_t size = 64) {
  static std::byte arena[1 << 16];
  return pami::MemoryRegion{owner, arena + id * 256, size, id};
}

TEST(EndpointCache, MarksOncePerRankContext) {
  EndpointCache cache(4, 2);
  EXPECT_FALSE(cache.lookup_or_mark(1, 0));
  EXPECT_TRUE(cache.lookup_or_mark(1, 0));
  EXPECT_FALSE(cache.lookup_or_mark(1, 1));  // other context distinct
  EXPECT_FALSE(cache.lookup_or_mark(3, 0));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_THROW(cache.lookup_or_mark(4, 0), Error);
}

TEST(RegionCache, HitBumpsFrequencyMissCounts) {
  RegionCache cache(4);
  cache.insert(1, region(1, 10));
  EXPECT_TRUE(cache.lookup(1, region(1, 10).base, 8).has_value());
  EXPECT_FALSE(cache.lookup(1, region(1, 11).base, 8).has_value());
  EXPECT_FALSE(cache.lookup(2, region(1, 10).base, 8).has_value());  // wrong owner
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(RegionCache, LfuEvictsColdestEntry) {
  RegionCache cache(3);
  cache.insert(1, region(1, 1));
  cache.insert(1, region(1, 2));
  cache.insert(1, region(1, 3));
  // Heat up 1 and 3.
  for (int i = 0; i < 5; ++i) {
    cache.lookup(1, region(1, 1).base, 8);
    cache.lookup(1, region(1, 3).base, 8);
  }
  cache.insert(1, region(1, 4));  // must evict region 2 (frequency 1)
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup(1, region(1, 1).base, 8).has_value());
  EXPECT_FALSE(cache.lookup(1, region(1, 2).base, 8).has_value());
  EXPECT_TRUE(cache.lookup(1, region(1, 3).base, 8).has_value());
  EXPECT_TRUE(cache.lookup(1, region(1, 4).base, 8).has_value());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(RegionCache, DuplicateInsertRefreshesInPlace) {
  RegionCache cache(2);
  cache.insert(1, region(1, 5));
  cache.insert(1, region(1, 5));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegionCache, InvalidateByRankAndId) {
  RegionCache cache(8);
  cache.insert(1, region(1, 1));
  cache.insert(1, region(1, 2));
  cache.insert(2, region(2, 3));
  cache.invalidate(1, 1);
  EXPECT_EQ(cache.size(), 2u);
  cache.invalidate_rank(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup(2, region(2, 3).base, 8).has_value());
}

TEST(RegionCache, CoverageSemantics) {
  RegionCache cache(2);
  const auto r = region(1, 6, 64);
  cache.insert(1, r);
  EXPECT_TRUE(cache.lookup(1, r.base + 32, 32).has_value());
  EXPECT_FALSE(cache.lookup(1, r.base + 32, 64).has_value());  // spills out
}

TEST(RegionQueryProtocol, MissResolvedViaAmAndCached) {
  // Private buffer published via directory: the first access misses
  // and queries the owner; repeats hit the cache.
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto* priv = static_cast<std::byte*>(comm.malloc_local(1024));
    auto& directory = comm.malloc_collective(sizeof(std::byte*));
    *reinterpret_cast<std::byte**>(directory.local(comm.rank())) = priv;
    if (comm.rank() == 1) priv[7] = std::byte{0x5A};
    comm.barrier();
    if (comm.rank() == 0) {
      std::byte* remote = nullptr;
      comm.get(directory.at(1), &remote, sizeof remote);
      std::byte back[16] = {};
      comm.get(RemotePtr{1, remote}, back, 16);
      EXPECT_EQ(back[7], std::byte{0x5A});
      EXPECT_EQ(comm.stats().region_queries_sent, 1u);
      comm.get(RemotePtr{1, remote}, back, 16);
      EXPECT_EQ(comm.stats().region_queries_sent, 1u) << "second access must hit";
      EXPECT_GE(comm.region_cache().hits(), 1u);
    }
    comm.barrier();
  });
}

TEST(RegionQueryProtocol, UnregisteredRemoteBufferFallsBack) {
  // The target's buffer is NOT registered (region limit 1 eaten by the
  // directory): the query returns not-found and the op falls back.
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.machine.max_memregions_per_rank = 1;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& directory = comm.malloc_collective(sizeof(std::byte*));  // takes region #1
    static std::byte private_bufs[2][256];
    std::byte* priv = private_bufs[comm.rank()];
    *reinterpret_cast<std::byte**>(directory.local(comm.rank())) = priv;
    if (comm.rank() == 1) priv[3] = std::byte{0x77};
    comm.barrier();
    if (comm.rank() == 0) {
      std::byte* remote = nullptr;
      comm.get(directory.at(1), &remote, sizeof remote);
      std::byte back[8] = {};
      comm.get(RemotePtr{1, remote}, back, 8);
      EXPECT_EQ(back[3], std::byte{0x77});
      EXPECT_GE(comm.stats().fallback_gets, 1u);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
