// World-level behaviour: barriers, collective allocation, statistics
// aggregation, determinism across runs, and progress-mode plumbing.
#include <gtest/gtest.h>

#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

WorldConfig make_cfg(int ranks) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  return cfg;
}

TEST(WorldTest, BarrierAlignsVirtualTime) {
  World world(make_cfg(4));
  std::vector<Time> after;
  world.spmd([&](Comm& comm) {
    comm.compute(from_us(100) * (comm.rank() + 1));  // skewed arrival
    comm.barrier();
    after.push_back(comm.now());
    comm.barrier();
  });
  ASSERT_EQ(after.size(), 4u);
  for (const Time t : after) EXPECT_EQ(t, after[0]);
}

TEST(WorldTest, BarrierCostsAtLeastHardwareLatency) {
  World world(make_cfg(2));
  world.spmd([&](Comm& comm) {
    comm.barrier();  // align
    const Time t0 = comm.now();
    comm.barrier();
    EXPECT_GE(comm.now() - t0,
              comm.process().machine().params().barrier_latency);
  });
}

TEST(WorldTest, CollectiveMallocGivesDistinctSlabsAndRegions) {
  World world(make_cfg(3));
  world.spmd([](Comm& comm) {
    auto& a = comm.malloc_collective(1024);
    auto& b = comm.malloc_collective(2048);
    EXPECT_NE(&a, &b);
    EXPECT_EQ(a.bytes_per_rank(), 1024u);
    EXPECT_EQ(b.bytes_per_rank(), 2048u);
    for (int r = 0; r < comm.nprocs(); ++r) {
      EXPECT_NE(a.at(r).addr, nullptr);
      EXPECT_TRUE(a.region_of(r).valid());
      EXPECT_TRUE(a.contains(r, a.at(r).addr, 1024));
      EXPECT_FALSE(a.contains(r, b.at(r).addr, 1));
      for (int q = 0; q < r; ++q) EXPECT_NE(a.at(r).addr, a.at(q).addr);
    }
    comm.barrier();
  });
  EXPECT_EQ(world.heaps().size(), 2u);
}

TEST(WorldTest, MismatchedCollectiveSizeRejected) {
  World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 comm.malloc_collective(comm.rank() == 0 ? 100 : 200);
               }),
               Error);
}

TEST(WorldTest, FreeCollectiveReleasesRegions) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    const auto regions_before = comm.process().space().memregions;
    auto& mem = comm.malloc_collective(512);
    EXPECT_EQ(comm.process().space().memregions, regions_before + 1);
    comm.free_collective(mem);
    EXPECT_EQ(comm.process().space().memregions, regions_before);
    EXPECT_TRUE(mem.freed());
  });
}

TEST(WorldTest, StatsAggregateAcrossRanks) {
  World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(256);
    std::byte buf[64]{};
    const int peer = (comm.rank() + 1) % comm.nprocs();
    comm.put(buf, mem.at(peer), 64);
    comm.barrier();
  });
  const CommStats total = world.total_stats();
  EXPECT_EQ(total.puts, 4u);
  EXPECT_EQ(total.bytes_put, 4u * 64u);
  EXPECT_EQ(world.stats(0).puts, 1u);
  EXPECT_GT(world.elapsed(), 0);
}

TEST(WorldTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    World world(make_cfg(8));
    world.spmd([](Comm& comm) {
      auto& mem = comm.malloc_collective(4096);
      std::vector<double> v(32, 1.0);
      for (int i = 0; i < 4; ++i) {
        comm.acc(1.0, v.data(), mem.at((comm.rank() + i + 1) % comm.nprocs()), 32);
        comm.fetch_add(mem.at(0), 1);
      }
      comm.barrier();
    });
    return world.elapsed();
  };
  const Time a = run_once();
  const Time b = run_once();
  EXPECT_EQ(a, b) << "simulation must be bit-reproducible";
}

TEST(WorldTest, AsyncModeUsesSecondContextForService) {
  WorldConfig cfg = make_cfg(2);
  cfg.armci.progress = ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    EXPECT_EQ(comm.main_context().index(), 0);
    EXPECT_EQ(comm.service_context().index(), 1);
    auto& mem = comm.malloc_collective(64);
    std::vector<double> v(4, 1.0);
    if (comm.rank() == 0) {
      comm.acc(1.0, v.data(), mem.at(1), 4);
      comm.fence_all();
    }
    comm.barrier();
  });
  // Rank 1's accumulate was dispatched on its context 1 by the async
  // thread, not context 0.
  const auto& p1_ctx1 = world.machine().process(1).context(1);
  EXPECT_EQ(p1_ctx1.stats().ams_dispatched, 1u);
}

TEST(WorldTest, SingleRankWorldWorks) {
  World world(make_cfg(1));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(128);
    double v = 3.5;
    comm.put(&v, mem.at(0), sizeof v);
    comm.fence(0);
    double back = 0;
    comm.get(mem.at(0), &back, sizeof back);
    EXPECT_DOUBLE_EQ(back, 3.5);
    EXPECT_EQ(comm.fetch_add(mem.at(0).offset(64), 5), 0);
    comm.barrier();
  });
}

TEST(WorldTest, SecondSpmdRejected) {
  // A World hosts exactly one SPMD program: PAMI clients are created
  // once per process lifetime.
  World world(make_cfg(2));
  world.spmd([](Comm& comm) { comm.barrier(); });
  EXPECT_GT(world.elapsed(), 0);
  EXPECT_THROW(world.spmd([](Comm&) {}), Error);
}

}  // namespace
}  // namespace pgasq::armci
