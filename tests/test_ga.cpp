// Global Arrays layer: distribution arithmetic, patch operations
// across block boundaries, accumulate, and the shared counter.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "ga/global_array.hpp"

namespace pgasq::ga {
namespace {

armci::WorldConfig make_cfg(int ranks) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  return cfg;
}

TEST(Distribution, RangesPartitionTheMatrix) {
  for (int p : {1, 2, 4, 6, 16}) {
    Distribution2D dist(p, 37, 53);
    EXPECT_EQ(dist.grid_rows() * dist.grid_cols(), p);
    // Row ranges tile [0, rows) exactly.
    std::int64_t expect_lo = 0;
    for (int gr = 0; gr < dist.grid_rows(); ++gr) {
      const auto [lo, hi] = dist.row_range(gr);
      EXPECT_EQ(lo, expect_lo);
      EXPECT_GT(hi, lo);
      expect_lo = hi;
    }
    EXPECT_EQ(expect_lo, 37);
    std::int64_t col_lo = 0;
    for (int gc = 0; gc < dist.grid_cols(); ++gc) {
      const auto [lo, hi] = dist.col_range(gc);
      EXPECT_EQ(lo, col_lo);
      col_lo = hi;
    }
    EXPECT_EQ(col_lo, 53);
  }
}

TEST(Distribution, OwnerConsistentWithRanges) {
  Distribution2D dist(6, 40, 40);
  for (std::int64_t i = 0; i < 40; i += 3) {
    for (std::int64_t j = 0; j < 40; j += 3) {
      const armci::RankId r = dist.owner(i, j);
      const int gr = r / dist.grid_cols();
      const int gc = r % dist.grid_cols();
      const auto [rlo, rhi] = dist.row_range(gr);
      const auto [clo, chi] = dist.col_range(gc);
      EXPECT_GE(i, rlo);
      EXPECT_LT(i, rhi);
      EXPECT_GE(j, clo);
      EXPECT_LT(j, chi);
    }
  }
}

TEST(Distribution, UnevenBlocksHandled) {
  // 10 rows across 3 grid rows: 4, 3, 3.
  Distribution2D dist(3, 10, 10);
  ASSERT_EQ(dist.grid_rows(), 1);  // 3 = 1 x 3 grid
  ASSERT_EQ(dist.grid_cols(), 3);
  const auto [c0lo, c0hi] = dist.col_range(0);
  EXPECT_EQ(c0hi - c0lo, 4);
  const auto [c2lo, c2hi] = dist.col_range(2);
  EXPECT_EQ(c2hi - c2lo, 3);
}

TEST(GlobalArrayTest, FillAndReadBack) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    GlobalArray a(comm, 20, 20);
    a.fill_local([](std::int64_t i, std::int64_t j) {
      return static_cast<double>(i) + 0.01 * static_cast<double>(j);
    });
    a.sync();
    // Sample elements owned by various ranks.
    for (std::int64_t i = 0; i < 20; i += 7) {
      for (std::int64_t j = 0; j < 20; j += 7) {
        EXPECT_DOUBLE_EQ(a.read_element(i, j), i + 0.01 * j);
      }
    }
    comm.barrier();
  });
}

TEST(GlobalArrayTest, PutPatchSpanningFourOwners) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    GlobalArray a(comm, 16, 16);  // 2x2 grid -> blocks of 8x8
    a.fill_local(0.0);
    a.sync();
    if (comm.rank() == 0) {
      std::vector<double> patch(8 * 8);
      for (int k = 0; k < 64; ++k) patch[static_cast<std::size_t>(k)] = k + 1;
      a.put(4, 12, 4, 12, patch.data(), 8);  // spans all 4 owners
      comm.fence_all();
      std::vector<double> back(8 * 8, -1);
      a.get(4, 12, 4, 12, back.data(), 8);
      EXPECT_EQ(back, patch);
      // Outside the patch untouched.
      EXPECT_DOUBLE_EQ(a.read_element(0, 0), 0.0);
      EXPECT_DOUBLE_EQ(a.read_element(15, 15), 0.0);
      EXPECT_DOUBLE_EQ(a.read_element(3, 4), 0.0);
    }
    comm.barrier();
  });
}

TEST(GlobalArrayTest, AccumulateFromAllRanksSums) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    GlobalArray a(comm, 12, 12);
    a.fill_local(0.0);
    a.sync();
    std::vector<double> ones(12 * 12, 1.0);
    a.acc(0.5, 0, 12, 0, 12, ones.data(), 12);
    a.sync();  // barrier includes fence_all
    EXPECT_DOUBLE_EQ(a.read_element(5, 5), 0.5 * comm.nprocs());
    comm.barrier();
  });
}

TEST(GlobalArrayTest, GetWithWideLeadingDimension) {
  armci::World world(make_cfg(2));
  world.spmd([](armci::Comm& comm) {
    GlobalArray a(comm, 10, 10);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 100.0 * i + j; });
    a.sync();
    std::vector<double> buf(4 * 20, -1.0);
    a.get(2, 6, 3, 7, buf.data(), 20);  // ld larger than patch width
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(r * 20 + c)],
                         100.0 * (2 + r) + (3 + c));
      }
      EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(r * 20 + 4)], -1.0);
    }
    comm.barrier();
  });
}

TEST(GlobalArrayTest, PatchValidationRejectsBadRanges) {
  armci::World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](armci::Comm& comm) {
                 GlobalArray a(comm, 8, 8);
                 double buf[4];
                 a.get(6, 10, 0, 2, buf, 2);  // rhi beyond matrix
               }),
               Error);
}

TEST(SharedCounterTest, MonotoneUniqueAcrossRanksAndReset) {
  armci::World world(make_cfg(6));
  std::vector<std::int64_t> seen;
  world.spmd([&](armci::Comm& comm) {
    SharedCounter counter(comm);
    comm.barrier();
    for (int i = 0; i < 5; ++i) seen.push_back(counter.next());
    comm.barrier();
    EXPECT_EQ(counter.read(), 30);
    counter.reset();
    EXPECT_EQ(counter.read(), 0);
    comm.barrier();
  });
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(i));
  }
}

TEST(SharedCounterTest, NonZeroHomeRank) {
  armci::World world(make_cfg(4));
  world.spmd([](armci::Comm& comm) {
    SharedCounter counter(comm, /*home=*/2);
    comm.barrier();
    counter.next();
    comm.barrier();
    EXPECT_EQ(counter.read(), comm.nprocs());
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::ga
