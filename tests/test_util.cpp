// Unit tests for the util module: stats, tables, config, rng, time.
#include <gtest/gtest.h>

#include <cmath>

#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time_types.hpp"

namespace pgasq {
namespace {

TEST(TimeTypes, Conversions) {
  using namespace literals;
  EXPECT_EQ(1_us, 1000 * 1_ns);
  EXPECT_EQ(from_us(2.89), 2890 * kNanosecond);
  EXPECT_DOUBLE_EQ(to_us(from_us(123.456)), 123.456);
  EXPECT_DOUBLE_EQ(to_ns(1), 0.001);
  EXPECT_EQ(from_ns(0.5634), 563);  // rounds to nearest ps
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, EmptyAndMergeIntoEmpty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  Accumulator b;
  b.add(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Samples, ExactQuantiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
}

TEST(Samples, CapacityTruncates) {
  Samples s(10);
  for (int i = 0; i < 20; ++i) s.add(i);
  EXPECT_EQ(s.count(), 10u);
  EXPECT_TRUE(s.truncated());
}

TEST(Log2Histogram, Buckets) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Table, AlignsAndFormats) {
  Table t({"a", "bbbb"});
  t.row().add(1).add(2.5, 1);
  t.row().add(std::string("xyz")).add(100);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a  bbbb"), std::string::npos);
  EXPECT_NE(s.find("xyz"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Table, RejectsOverflowAndOrphanAdd) {
  Table t({"one"});
  EXPECT_THROW(t.add("no row yet"), Error);
  t.row().add(1);
  EXPECT_THROW(t.add("overflow"), Error);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "value"});
  t.row().add(std::string("plain")).add(1);
  t.row().add(std::string("has,comma")).add(std::string("has\"quote"));
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\",\"has\"\"quote\"\n"), std::string::npos);
}

TEST(FormatBytes, HumanUnits) {
  EXPECT_EQ(format_bytes(16), "16");
  EXPECT_EQ(format_bytes(2048), "2K");
  EXPECT_EQ(format_bytes(1 << 20), "1M");
  EXPECT_EQ(format_bytes(1500), "1500");  // non-multiple stays raw
}

TEST(Config, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--ranks=64", "net=loggp", "--verbose", "positional"};
  Config c = Config::from_args(5, const_cast<char**>(argv));
  EXPECT_EQ(c.get_int("ranks", 0), 64);
  EXPECT_EQ(c.get_string("net", ""), "loggp");
  EXPECT_TRUE(c.get_bool("verbose", false));
  ASSERT_EQ(c.positional().size(), 1u);
  EXPECT_EQ(c.positional()[0], "positional");
  EXPECT_EQ(c.get_int("absent", -7), -7);
}

TEST(Config, TypeErrors) {
  Config c;
  c.set("x", "abc");
  EXPECT_THROW(c.get_int("x", 0), Error);
  EXPECT_THROW(c.get_double("x", 0.0), Error);
  EXPECT_THROW(c.get_bool("x", false), Error);
  c.set("b", "on");
  EXPECT_TRUE(c.get_bool("b", false));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(17);
    EXPECT_LT(v, 17u);
    const auto w = r.next_in(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Error, CheckMacroMessage) {
  try {
    PGASQ_CHECK(1 == 2, << "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace pgasq
