// Unit tests for the simulated PAMI layer: object lifecycle costs,
// memory regions, RDMA one-sidedness, the advance-gated delivery of
// active messages and rmw (the paper's core mechanic), and ordering.
#include <gtest/gtest.h>

#include <cstring>

#include "pami/machine.hpp"
#include "util/error.hpp"

namespace pgasq::pami {
namespace {

MachineConfig two_ranks() {
  MachineConfig cfg;
  cfg.num_ranks = 2;
  cfg.ranks_per_node = 1;
  return cfg;
}

/// Rank program harness: runs `rank0` and `rank1` bodies.
void run_pair(MachineConfig cfg, std::function<void(Process&)> rank0,
              std::function<void(Process&)> rank1) {
  Machine machine(cfg);
  machine.run([&](Process& p) {
    p.create_client();
    p.create_context();
    (p.rank() == 0 ? rank0 : rank1)(p);
  });
}

TEST(Process, CreationCostsChargedToVirtualTime) {
  Machine machine(two_ranks());
  const auto& p = machine.params();
  machine.run([&](Process& proc) {
    if (proc.rank() != 0) return;
    Time t0 = proc.now();
    proc.create_client();
    EXPECT_EQ(proc.now() - t0, p.client_create);
    t0 = proc.now();
    proc.create_context();
    EXPECT_EQ(proc.now() - t0, p.context_create);
    t0 = proc.now();
    proc.create_endpoint(1, 0);
    EXPECT_EQ(proc.now() - t0, p.endpoint_create);
    std::byte buf[64];
    t0 = proc.now();
    auto r = proc.create_memregion(buf, sizeof buf);
    EXPECT_EQ(proc.now() - t0, p.memregion_create);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(proc.space().memregions, 1u);
    EXPECT_EQ(proc.space().contexts, 1u);
    EXPECT_EQ(proc.space().endpoints, 1u);
  });
}

TEST(Process, ContextBeforeClientRejected) {
  Machine machine(two_ranks());
  EXPECT_THROW(machine.run([&](Process& proc) { proc.create_context(); }), Error);
}

TEST(RegionTable, LimitProducesFailureNotThrow) {
  MachineConfig cfg = two_ranks();
  cfg.max_memregions_per_rank = 2;
  Machine machine(cfg);
  machine.run([&](Process& proc) {
    std::byte a[16], b[16], c[16];
    EXPECT_TRUE(proc.create_memregion(a, 16).has_value());
    EXPECT_TRUE(proc.create_memregion(b, 16).has_value());
    EXPECT_FALSE(proc.create_memregion(c, 16).has_value());  // at limit
    // Destroy one, and capacity frees up.
    proc.destroy_memregion(*proc.regions().find(a, 16));
    EXPECT_TRUE(proc.create_memregion(c, 16).has_value());
  });
}

TEST(RegionTable, FindRequiresFullCoverage) {
  RegionTable table(0, 10);
  std::byte buf[128];
  auto r = table.create(buf, 64);
  ASSERT_TRUE(r);
  EXPECT_TRUE(table.find(buf, 64).has_value());
  EXPECT_TRUE(table.find(buf + 10, 54).has_value());
  EXPECT_FALSE(table.find(buf + 10, 64).has_value());  // runs past end
  EXPECT_FALSE(table.find(buf + 64, 1).has_value());
}

TEST(Rdma, PutDataNotVisibleBeforeArrival) {
  std::vector<double> src(8, 3.25), dst(8, 0.0);
  run_pair(
      two_ranks(),
      [&](Process& p) {
        auto lmr = p.create_memregion(src.data(), sizeof(double) * 8);
        auto rmr = MemoryRegion{1, reinterpret_cast<std::byte*>(dst.data()),
                                sizeof(double) * 8, 99};
        bool done = false;
        p.context(0).rput(*lmr, 0, rmr, 0, sizeof(double) * 8,
                          [&done] { done = true; });
        // Immediately after initiation the remote memory is untouched.
        EXPECT_EQ(dst[0], 0.0);
        p.context(0).advance_until([&done] { return done; });
        // Local completion can precede remote arrival; wait for wire.
        p.busy(from_us(10));
        EXPECT_EQ(dst[0], 3.25);
      },
      [](Process& p) { p.busy(from_us(50)); });
}

TEST(Rdma, GetCompletesWithoutTargetAdvance) {
  // The target NEVER advances its context; RDMA get must still work —
  // that is what "truly one-sided" means (S III-C1).
  std::vector<int> remote_data(64, 7), local(64, 0);
  run_pair(
      two_ranks(),
      [&](Process& p) {
        auto lmr = p.create_memregion(local.data(), sizeof(int) * 64);
        auto rmr = MemoryRegion{1, reinterpret_cast<std::byte*>(remote_data.data()),
                                sizeof(int) * 64, 42};
        bool done = false;
        p.context(0).rget(*lmr, 0, rmr, 0, sizeof(int) * 64, [&] { done = true; });
        p.context(0).advance_until([&] { return done; });
        EXPECT_EQ(local[13], 7);
      },
      [](Process& p) { p.busy(from_us(200)); /* computes, never advances */ });
}

TEST(Am, DeliveredOnlyWhenTargetAdvances) {
  bool handled = false;
  Time handled_at = 0;
  Time sent_at = 0;
  run_pair(
      two_ranks(),
      [&](Process& p) {
        sent_at = p.now();
        p.context(0).send(Endpoint{1, 0}, 5, {}, {}, nullptr);
        p.busy(from_us(500));
      },
      [&](Process& p) {
        p.context(0).set_dispatch(5, [&](Context&, const AmMessage& msg) {
          handled = true;
          handled_at = p.now();
          EXPECT_EQ(msg.source.rank, 0);
        });
        // Compute for a long time before making progress.
        p.busy(from_us(300));
        EXPECT_FALSE(handled) << "AM must not run without advance";
        p.context(0).advance();
        EXPECT_TRUE(handled);
        // Service happened after the compute phase, not at arrival.
        EXPECT_GE(handled_at - sent_at, from_us(300));
      });
}

TEST(Am, PayloadIntegrity) {
  std::vector<std::byte> got;
  run_pair(
      two_ranks(),
      [&](Process& p) {
        std::vector<std::byte> payload(1000);
        for (std::size_t i = 0; i < payload.size(); ++i) {
          payload[i] = static_cast<std::byte>(i % 251);
        }
        std::vector<std::byte> header{std::byte{0xAB}};
        p.context(0).send(Endpoint{1, 0}, 9, header, payload, nullptr);
        p.busy(from_us(100));
      },
      [&](Process& p) {
        p.context(0).set_dispatch(9, [&](Context&, const AmMessage& msg) {
          EXPECT_EQ(msg.header[0], std::byte{0xAB});
          got = msg.payload;
        });
        p.context(0).advance_until([&] { return !got.empty(); });
        ASSERT_EQ(got.size(), 1000u);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], static_cast<std::byte>(i % 251));
        }
      });
}

TEST(Rmw, SoftwareServiceRequiresTargetProgress) {
  std::int64_t counter = 100;
  Time reply_at = 0;
  run_pair(
      two_ranks(),
      [&](Process& p) {
        std::int64_t fetched = -1;
        p.context(0).rmw(Endpoint{1, 0}, &counter, RmwOp::kFetchAdd, 5, 0,
                         [&](std::int64_t old) {
                           fetched = old;
                           reply_at = p.now();
                         });
        p.context(0).advance_until([&] { return fetched >= 0; });
        EXPECT_EQ(fetched, 100);
        EXPECT_EQ(counter, 105);
        // Serviced only after the target's 400us compute.
        EXPECT_GE(reply_at, from_us(400));
      },
      [&](Process& p) {
        p.busy(from_us(400));
        p.context(0).advance();  // services the rmw now
      });
}

TEST(Rmw, HardwareAmoBypassesTargetSoftware) {
  MachineConfig cfg = two_ranks();
  cfg.params.hardware_amo = true;
  std::int64_t counter = 10;
  run_pair(
      cfg,
      [&](Process& p) {
        std::int64_t fetched = -1;
        const Time t0 = p.now();
        p.context(0).rmw(Endpoint{1, 0}, &counter, RmwOp::kFetchAdd, 1, 0,
                         [&](std::int64_t old) { fetched = old; });
        p.context(0).advance_until([&] { return fetched >= 0; });
        EXPECT_EQ(fetched, 10);
        // Completed in wire time, far below the target's 400us nap.
        EXPECT_LT(p.now() - t0, from_us(50));
      },
      [](Process& p) { p.busy(from_us(400)); });
}

TEST(Rmw, AllOperationsApplyCorrectly) {
  std::int64_t word = 7;
  run_pair(
      two_ranks(),
      [&](Process& p) {
        int done = 0;
        auto issue = [&](RmwOp op, std::int64_t operand, std::int64_t compare,
                         std::int64_t expect_old) {
          std::int64_t fetched = -1;
          p.context(0).rmw(Endpoint{1, 0}, &word, op, operand, compare,
                           [&](std::int64_t old) {
                             fetched = old;
                             ++done;
                           });
          p.context(0).advance_until([&] { return fetched != -1; });
          EXPECT_EQ(fetched, expect_old);
        };
        issue(RmwOp::kFetchAdd, 3, 0, 7);     // 7 -> 10
        issue(RmwOp::kSwap, 20, 0, 10);       // 10 -> 20
        issue(RmwOp::kCompareSwap, 5, 20, 20);  // matches -> 5
        issue(RmwOp::kCompareSwap, 9, 999, 5);  // no match, stays 5
        issue(RmwOp::kAdd, 1, 0, 5);          // 5 -> 6
        EXPECT_EQ(done, 5);
      },
      [&](Process& p) {
        // Service loop until the word reaches its final value.
        p.context(0).advance_until([&] { return word == 6; });
      });
}

TEST(Ordering, PutsToSameTargetArriveInOrder) {
  // A 1MB put followed by a 16B put: the small one must not overtake.
  std::vector<std::byte> big(1 << 20, std::byte{1});
  std::array<std::byte, 16> small{};
  std::vector<std::byte> target(1 << 20, std::byte{0});
  run_pair(
      two_ranks(),
      [&](Process& p) {
        auto mr_big = p.create_memregion(big.data(), big.size());
        auto mr_small = p.create_memregion(small.data(), small.size());
        auto rmr = MemoryRegion{1, target.data(), target.size(), 1};
        int done = 0;
        p.context(0).rput(*mr_big, 0, rmr, 0, big.size(), [&] { ++done; });
        small[0] = std::byte{2};
        p.context(0).rput(*mr_small, 0, rmr, 0, 16, [&] { ++done; });
        p.context(0).advance_until([&] { return done == 2; });
        p.busy(from_ms(2));  // let both arrive
        EXPECT_EQ(target[0], std::byte{2}) << "small put overtaken or lost";
        EXPECT_EQ(target[17], std::byte{1});
      },
      [](Process& p) { p.busy(from_ms(3)); });
}

TEST(ContextStats, ServiceDelayAndCounts) {
  run_pair(
      two_ranks(),
      [&](Process& p) {
        p.context(0).send(Endpoint{1, 0}, 1, {}, {}, nullptr);
        p.busy(from_us(100));
      },
      [&](Process& p) {
        p.context(0).set_dispatch(1, [](Context&, const AmMessage&) {});
        p.busy(from_us(50));
        p.context(0).advance();
        const auto& s = p.context(0).stats();
        EXPECT_EQ(s.ams_dispatched, 1u);
        EXPECT_GT(s.total_service_delay, 0);
        EXPECT_GE(s.advance_calls, 1u);
      });
}

TEST(Advance, BatchBoundedBySnapshot) {
  // Items posted by a handler are not serviced in the same advance.
  run_pair(
      two_ranks(),
      [&](Process& p) {
        p.context(0).send(Endpoint{1, 0}, 1, {}, {}, nullptr);
        p.busy(from_us(200));
      },
      [&](Process& p) {
        int handled = 0;
        p.context(0).set_dispatch(1, [&](Context& ctx, const AmMessage&) {
          ++handled;
          if (handled == 1) ctx.post_completion([] {}, 0);
        });
        p.busy(from_us(100));
        const std::size_t first = p.context(0).advance();
        EXPECT_EQ(first, 1u);               // only the AM
        EXPECT_TRUE(p.context(0).has_work());  // the posted completion waits
        const std::size_t second = p.context(0).advance();
        EXPECT_EQ(second, 1u);
      });
}

TEST(Machine, DimsPickedFromPartitionTable) {
  MachineConfig cfg;
  cfg.num_ranks = 2048;
  cfg.ranks_per_node = 16;
  Machine machine(cfg);
  EXPECT_EQ(machine.torus().num_nodes(), 128);
  EXPECT_EQ(machine.torus().dims(), (topo::Coord5{2, 2, 4, 4, 2}));
  EXPECT_EQ(machine.mapping().num_ranks(), 2048);
}

TEST(Machine, IndivisibleRanksRejected) {
  MachineConfig cfg;
  cfg.num_ranks = 10;
  cfg.ranks_per_node = 4;
  EXPECT_THROW(Machine{cfg}, Error);
}

}  // namespace
}  // namespace pgasq::pami
