// Atomic memory operations and ARMCI mutexes: fetch-and-add / swap /
// compare-and-swap correctness under concurrency, AMO ordering
// properties, and mutual exclusion via the CAS-based lock protocol.
#include <gtest/gtest.h>

#include "core/comm.hpp"

namespace pgasq::armci {
namespace {

WorldConfig make_cfg(int ranks, ProgressMode mode = ProgressMode::kDefault) {
  WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.armci.progress = mode;
  if (mode == ProgressMode::kAsyncThread) cfg.armci.contexts_per_rank = 2;
  return cfg;
}

class RmwModes : public ::testing::TestWithParam<ProgressMode> {};

TEST_P(RmwModes, FetchAddFromAllRanksYieldsUniqueTickets) {
  World world(make_cfg(8, GetParam()));
  std::vector<std::int64_t> tickets;
  world.spmd([&](Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    if (comm.rank() == 0) *reinterpret_cast<std::int64_t*>(mem.local(0)) = 0;
    comm.barrier();
    for (int i = 0; i < 4; ++i) {
      tickets.push_back(comm.fetch_add(mem.at(0), 1));
    }
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.fetch_add(mem.at(0), 0), 32);
    }
    comm.barrier();
  });
  std::sort(tickets.begin(), tickets.end());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i], static_cast<std::int64_t>(i)) << "duplicate or gap";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RmwModes,
                         ::testing::Values(ProgressMode::kDefault,
                                           ProgressMode::kAsyncThread));

TEST(Rmw, SwapReturnsOldValue) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    if (comm.rank() == 1) *reinterpret_cast<std::int64_t*>(mem.local(1)) = 77;
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.swap(mem.at(1), 5), 77);
      EXPECT_EQ(comm.swap(mem.at(1), 6), 5);
    }
    comm.barrier();
  });
}

TEST(Rmw, CompareSwapSemantics) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.compare_swap(mem.at(1), 0, 42), 0);   // succeeds
      EXPECT_EQ(comm.compare_swap(mem.at(1), 0, 99), 42);  // fails, returns 42
      EXPECT_EQ(comm.compare_swap(mem.at(1), 42, 7), 42);  // succeeds
      EXPECT_EQ(comm.fetch_add(mem.at(1), 0), 7);
    }
    comm.barrier();
  });
}

TEST(Rmw, MisalignedTargetRejected) {
  World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(64);
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.fetch_add(mem.at(1).offset(3), 1), Error);
    }
    comm.barrier();
  });
}

TEST(Rmw, HardwareAmoProducesSameValues) {
  WorldConfig cfg = make_cfg(8);
  cfg.machine.params.hardware_amo = true;
  World world(cfg);
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    comm.barrier();
    for (int i = 0; i < 4; ++i) comm.fetch_add(mem.at(0), 2);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.fetch_add(mem.at(0), 0), 64);
    }
    comm.barrier();
  });
}

class MutexModes : public ::testing::TestWithParam<ProgressMode> {};

TEST_P(MutexModes, MutualExclusionAcrossRanks) {
  World world(make_cfg(6, GetParam()));
  int in_section = 0;
  int max_in_section = 0;
  long long sum = 0;
  world.spmd([&](Comm& comm) {
    MutexSet mutexes = comm.create_mutexes(2);
    comm.barrier();
    for (int round = 0; round < 3; ++round) {
      comm.lock(mutexes, 0, /*owner=*/0);
      ++in_section;
      max_in_section = std::max(max_in_section, in_section);
      comm.compute(from_us(30));  // hold across virtual time
      sum += 1;
      --in_section;
      comm.unlock(mutexes, 0, /*owner=*/0);
    }
    comm.barrier();
  });
  EXPECT_EQ(max_in_section, 1) << "two ranks inside the critical section";
  EXPECT_EQ(sum, 18);
}

INSTANTIATE_TEST_SUITE_P(Modes, MutexModes,
                         ::testing::Values(ProgressMode::kDefault,
                                           ProgressMode::kAsyncThread));

TEST(Mutex, IndependentMutexesDoNotInterfere) {
  World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    MutexSet mutexes = comm.create_mutexes(4);
    comm.barrier();
    // Each rank takes its own mutex; no blocking possible.
    const Time t0 = comm.now();
    comm.lock(mutexes, comm.rank(), 0);
    comm.unlock(mutexes, comm.rank(), 0);
    EXPECT_LT(comm.now() - t0, from_ms(1));
    comm.barrier();
  });
}

TEST(Mutex, UnlockOfUnheldRejected) {
  World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 MutexSet m = comm.create_mutexes(1);
                 comm.barrier();
                 if (comm.rank() == 0) comm.unlock(m, 0, 1);
                 comm.barrier();
               }),
               Error);
}

TEST(Rmw, CounterTimeAccounted) {
  World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    auto& mem = comm.malloc_collective(8);
    comm.barrier();
    for (int i = 0; i < 3; ++i) comm.fetch_add(mem.at(0), 1);
    EXPECT_GT(comm.stats().time_in_rmw, 0);
    EXPECT_EQ(comm.stats().rmws, 3u);
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
