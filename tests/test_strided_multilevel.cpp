// Multi-level (3-D) strided transfers through the full ARMCI stack —
// the general s-dimensional patch case of Eq 9, beyond the 2-D specs
// the GA layer uses.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "core/strided.hpp"
#include "util/rng.hpp"

namespace pgasq::armci {
namespace {

struct Level3Case {
  std::uint64_t l0, n1, n2;
  StridedProtocol protocol;
};

class Level3RoundTrip : public ::testing::TestWithParam<Level3Case> {};

TEST_P(Level3RoundTrip, ThreeLevelPutGetPreservesData) {
  const Level3Case tc = GetParam();
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  cfg.armci.strided = tc.protocol;
  World world(cfg);
  world.spmd([tc](Comm& comm) {
    // Source strides: tight; destination strides: padded.
    const std::uint64_t s1 = tc.l0 * 2;
    const std::uint64_t s2 = s1 * tc.n1 + 64;
    const std::uint64_t d1 = tc.l0 * 3;
    const std::uint64_t d2 = d1 * tc.n1 + 128;
    const StridedSpec put_spec({tc.l0, tc.n1, tc.n2}, {s1, s2}, {d1, d2});
    const StridedSpec get_spec({tc.l0, tc.n1, tc.n2}, {d1, d2}, {s1, s2});
    const std::size_t src_bytes = put_spec.src_extent();
    const std::size_t dst_bytes = put_spec.dst_extent();
    auto& mem = comm.malloc_collective(dst_bytes);
    auto* src = static_cast<std::byte*>(comm.malloc_local(src_bytes));
    auto* back = static_cast<std::byte*>(comm.malloc_local(src_bytes));
    if (comm.rank() == 0) {
      Rng rng(tc.l0 * 131 + tc.n1);
      for (std::size_t i = 0; i < src_bytes; ++i) {
        src[i] = static_cast<std::byte>(rng.next_below(256));
      }
      comm.put_strided(src, mem.at(1), put_spec);
      comm.fence(1);
      std::fill(back, back + src_bytes, std::byte{0});
      comm.get_strided(mem.at(1), back, get_spec);
      // Compare every transferred byte chunk-by-chunk.
      put_spec.for_each_chunk([&](std::uint64_t soff, std::uint64_t) {
        for (std::uint64_t b = 0; b < tc.l0; ++b) {
          ASSERT_EQ(back[soff + b], src[soff + b])
              << "chunk@" << soff << " byte " << b;
        }
      });
      // Bytes between source chunks stay zero in `back`.
      if (s1 > tc.l0) {
        EXPECT_EQ(back[tc.l0], std::byte{0});
      }
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Level3RoundTrip,
    ::testing::Values(Level3Case{16, 4, 3, StridedProtocol::kZeroCopy},
                      Level3Case{16, 4, 3, StridedProtocol::kTyped},
                      Level3Case{16, 4, 3, StridedProtocol::kPackUnpack},
                      Level3Case{8, 8, 8, StridedProtocol::kAuto},
                      Level3Case{256, 2, 5, StridedProtocol::kAuto},
                      Level3Case{1, 3, 2, StridedProtocol::kPackUnpack}));

TEST(Level3, AccStridedThreeLevels) {
  WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  World world(cfg);
  world.spmd([](Comm& comm) {
    // 2 planes of 3 rows of 2 doubles.
    const std::uint64_t l0 = 2 * sizeof(double);
    const StridedSpec spec({l0, 3, 2}, {l0, 3 * l0}, {2 * l0, 8 * l0});
    auto& mem = comm.malloc_collective(spec.dst_extent());
    if (comm.rank() == 0) {
      std::vector<double> src(12);
      for (int i = 0; i < 12; ++i) src[static_cast<std::size_t>(i)] = i + 1;
      comm.acc_strided(2.0, src.data(), mem.at(1), spec);
      comm.acc_strided(1.0, src.data(), mem.at(1), spec);
      comm.fence(1);
      std::vector<double> raw(spec.dst_extent() / sizeof(double));
      comm.get(mem.at(1), raw.data(), spec.dst_extent());
      // First chunk lands at offset 0: elements 1, 2 scaled by 3.
      EXPECT_DOUBLE_EQ(raw[0], 3.0 * 1);
      EXPECT_DOUBLE_EQ(raw[1], 3.0 * 2);
      // Second chunk at dst stride 2*l0 = 4 doubles.
      EXPECT_DOUBLE_EQ(raw[4], 3.0 * 3);
      // Gap untouched.
      EXPECT_DOUBLE_EQ(raw[2], 0.0);
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::armci
