// GA_Gather / GA_Scatter over the I/O-vector layer: irregular element
// access batched per owning rank.
#include <gtest/gtest.h>

#include "ga/global_array.hpp"

namespace pgasq::ga {
namespace {

armci::WorldConfig make_cfg(int ranks) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  return cfg;
}

std::vector<GlobalArray::ElementIndex> diagonal_indices(std::int64_t n,
                                                        std::int64_t step) {
  std::vector<GlobalArray::ElementIndex> idx;
  for (std::int64_t i = 0; i < n; i += step) idx.push_back({i, i});
  return idx;
}

TEST(GatherScatter, GatherReadsAcrossOwners) {
  armci::World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 20, 20);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 100.0 * i + j; });
    a.sync();
    // Irregular set spanning all four owner blocks.
    std::vector<GlobalArray::ElementIndex> idx = {
        {0, 0}, {19, 19}, {3, 17}, {17, 3}, {9, 10}, {10, 9}, {5, 5}};
    std::vector<double> values(idx.size(), -1.0);
    a.gather(idx, values.data());
    for (std::size_t k = 0; k < idx.size(); ++k) {
      EXPECT_DOUBLE_EQ(values[k], 100.0 * idx[k].i + idx[k].j) << "k=" << k;
    }
    comm.barrier();
  });
}

TEST(GatherScatter, ScatterWritesAndGatherReadsBack) {
  armci::World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 16, 16);
    a.fill_local(0.0);
    a.sync();
    if (comm.rank() == 0) {
      const auto idx = diagonal_indices(16, 3);
      std::vector<double> vals;
      for (std::size_t k = 0; k < idx.size(); ++k) vals.push_back(10.0 + k);
      a.scatter(idx, vals.data());
      comm.fence_all();
      std::vector<double> back(idx.size(), -1.0);
      a.gather(idx, back.data());
      EXPECT_EQ(back, vals);
      // Off-diagonal untouched.
      EXPECT_DOUBLE_EQ(a.read_element(0, 1), 0.0);
    }
    comm.barrier();
  });
}

TEST(GatherScatter, ScatterAccSumsContributions) {
  armci::World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 12, 12);
    a.fill_local(0.0);
    a.sync();
    const auto idx = diagonal_indices(12, 2);
    std::vector<double> ones(idx.size(), 1.0);
    a.scatter_acc(static_cast<double>(comm.rank() + 1), idx, ones.data());
    a.sync();
    const double rank_sum = comm.nprocs() * (comm.nprocs() + 1) / 2.0;
    EXPECT_DOUBLE_EQ(a.read_element(4, 4), rank_sum);
    EXPECT_DOUBLE_EQ(a.read_element(4, 5), 0.0);
    comm.barrier();
  });
}

TEST(GatherScatter, EmptyIndexListIsNoop) {
  armci::World world(make_cfg(2));
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 8, 8);
    a.sync();
    std::vector<GlobalArray::ElementIndex> none;
    double sentinel = 42.0;
    a.gather(none, &sentinel);
    a.scatter(none, &sentinel);
    EXPECT_DOUBLE_EQ(sentinel, 42.0);
    comm.barrier();
  });
}

TEST(GatherScatter, OutOfRangeIndexRejected) {
  armci::World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 GlobalArray a(comm, 8, 8);
                 a.sync();
                 std::vector<GlobalArray::ElementIndex> idx = {{8, 0}};
                 double v = 0;
                 a.gather(idx, &v);
               }),
               Error);
}

}  // namespace
}  // namespace pgasq::ga
