// Global reductions: gop_sum (now backed by coll::CollEngine), dot,
// and element_sum — including determinism across progress modes and
// process counts. The engine itself is covered in test_collectives.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ga/collectives.hpp"
#include "ga/global_array.hpp"

namespace pgasq::ga {
namespace {

armci::WorldConfig make_cfg(int ranks,
                            armci::ProgressMode mode = armci::ProgressMode::kDefault) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = ranks;
  cfg.armci.progress = mode;
  if (mode == armci::ProgressMode::kAsyncThread) cfg.armci.contexts_per_rank = 2;
  return cfg;
}

class GopRanks : public ::testing::TestWithParam<int> {};

TEST_P(GopRanks, SumsVectorsAcrossRanks) {
  const int p = GetParam();
  armci::World world(make_cfg(p));
  world.spmd([p](Comm& comm) {
    std::vector<double> x(5);
    for (int i = 0; i < 5; ++i) {
      x[static_cast<std::size_t>(i)] = comm.rank() + 10.0 * i;
    }
    gop_sum(comm, x.data(), x.size());
    const double rank_sum = p * (p - 1) / 2.0;
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(x[static_cast<std::size_t>(i)], rank_sum + 10.0 * i * p, 1e-9)
          << "element " << i << " on rank " << comm.rank();
    }
    comm.barrier();
  });
}

// 4 and 8 exercise plain recursive doubling; 3 and 6 its
// non-power-of-two fold; 1 the trivial path.
INSTANTIATE_TEST_SUITE_P(Sizes, GopRanks, ::testing::Values(1, 3, 4, 6, 8));

TEST(Gop, AsyncThreadModeAgrees) {
  armci::World world(make_cfg(8, armci::ProgressMode::kAsyncThread));
  world.spmd([](Comm& comm) {
    double x = comm.rank() + 1.0;
    gop_sum(comm, &x, 1);
    EXPECT_DOUBLE_EQ(x, 36.0);
    comm.barrier();
  });
}

TEST(Gop, RepeatedCallsIndependent) {
  armci::World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    for (int round = 1; round <= 3; ++round) {
      double x = round * (comm.rank() + 1.0);
      gop_sum(comm, &x, 1);
      EXPECT_DOUBLE_EQ(x, round * 10.0);
    }
    comm.barrier();
  });
}

TEST(Collectives, DotMatchesSequential) {
  armci::World world(make_cfg(4));
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 12, 12);
    GlobalArray b(comm, 12, 12);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 1.0 + i + j; });
    b.fill_local([](std::int64_t i, std::int64_t j) { return i == j ? 2.0 : 0.0; });
    a.sync();
    const double d = dot(a, b);
    // Sum over diagonal of 2*(1+2i).
    double expected = 0.0;
    for (int i = 0; i < 12; ++i) expected += 2.0 * (1.0 + 2.0 * i);
    EXPECT_NEAR(d, expected, 1e-9);
    comm.barrier();
  });
}

TEST(Collectives, ElementSumSameOnEveryRank) {
  armci::World world(make_cfg(6));
  std::vector<double> values;
  world.spmd([&](Comm& comm) {
    GlobalArray a(comm, 10, 14);
    a.fill_local([](std::int64_t i, std::int64_t j) {
      return static_cast<double>(i * 14 + j);
    });
    a.sync();
    values.push_back(element_sum(a));
    comm.barrier();
  });
  const double expected = 139.0 * 140.0 / 2.0;
  for (const double v : values) EXPECT_NEAR(v, expected, 1e-9);
}

TEST(Collectives, DotRejectsMismatchedShapes) {
  armci::World world(make_cfg(2));
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 GlobalArray a(comm, 8, 8);
                 GlobalArray b(comm, 8, 9);
                 dot(a, b);
               }),
               Error);
}

}  // namespace
}  // namespace pgasq::ga
