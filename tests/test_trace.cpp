// Execution tracing: recorder mechanics and the end-to-end JSON dump
// from a traced World run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/comm.hpp"
#include "sim/trace.hpp"

namespace pgasq {
namespace {

TEST(TraceRecorder, RecordsSlicesAndInstants) {
  sim::TraceRecorder trace;
  const auto t0 = trace.register_track("rank0");
  const auto t1 = trace.register_track("async@rank0");
  trace.begin_slice(t0, from_us(1));
  trace.instant(t0, "nxtval", from_us(2));
  trace.end_slice(t0, from_us(3));
  trace.begin_slice(t1, from_us(3));
  trace.end_slice(t1, from_us(4));
  EXPECT_EQ(trace.event_count(), 5u);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("async@rank0"), std::string::npos);
  EXPECT_NE(json.find("nxtval"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2"), std::string::npos);
}

TEST(TraceRecorder, EscapesAndCaps) {
  sim::TraceRecorder trace(/*max_events=*/2);
  const auto t = trace.register_track("weird\"name\\x");
  trace.begin_slice(t, 0);
  trace.end_slice(t, 1);
  trace.instant(t, "dropped", 2);  // over the cap
  EXPECT_TRUE(trace.truncated());
  EXPECT_EQ(trace.event_count(), 2u);
  EXPECT_NE(trace.to_json().find("weird\\\"name\\\\x"), std::string::npos);
}

TEST(TraceIntegration, WorldRunWritesChromeJson) {
  const std::string path = "/tmp/pgasq_trace_test.json";
  std::remove(path.c_str());
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  cfg.machine.trace_json_path = path;
  cfg.armci.progress = armci::ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  armci::World world(cfg);
  world.spmd([](armci::Comm& comm) {
    auto& mem = comm.malloc_collective(64);
    comm.fetch_add(mem.at(0), 1);
    comm.barrier();
  });
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file missing";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("rank3"), std::string::npos);
  EXPECT_NE(json.find("async@rank0"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgasq
