// Distributed dgemm vs a sequential reference, across process counts,
// panel widths, alpha/beta and rectangular shapes.
#include <gtest/gtest.h>

#include <vector>

#include "ga/dgemm.hpp"

namespace pgasq::ga {
namespace {

/// Sequential reference multiply of the deterministic fill functions.
std::vector<double> reference(std::int64_t m, std::int64_t k, std::int64_t n,
                              double alpha, double beta) {
  auto fa = [](std::int64_t i, std::int64_t j) { return 0.5 * i - 0.25 * j + 1.0; };
  auto fb = [](std::int64_t i, std::int64_t j) { return 0.125 * i * j - 2.0; };
  auto fc = [](std::int64_t i, std::int64_t j) { return 1.0 * i + j; };
  std::vector<double> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) s += fa(i, kk) * fb(kk, j);
      c[static_cast<std::size_t>(i * n + j)] = alpha * s + beta * fc(i, j);
    }
  }
  return c;
}

struct Case {
  int ranks;
  std::int64_t m, k, n;
  std::int64_t panel;
  double alpha, beta;
};

class DgemmCases : public ::testing::TestWithParam<Case> {};

TEST_P(DgemmCases, MatchesSequentialReference) {
  const Case tc = GetParam();
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = tc.ranks;
  armci::World world(cfg);
  world.spmd([tc](Comm& comm) {
    GlobalArray a(comm, tc.m, tc.k);
    GlobalArray b(comm, tc.k, tc.n);
    GlobalArray c(comm, tc.m, tc.n);
    a.fill_local([](std::int64_t i, std::int64_t j) { return 0.5 * i - 0.25 * j + 1.0; });
    b.fill_local([](std::int64_t i, std::int64_t j) { return 0.125 * i * j - 2.0; });
    c.fill_local([](std::int64_t i, std::int64_t j) { return 1.0 * i + j; });
    DgemmOptions opt;
    opt.panel = tc.panel;
    dgemm(tc.alpha, a, b, tc.beta, c, opt);
    const auto ref = reference(tc.m, tc.k, tc.n, tc.alpha, tc.beta);
    // Spot-check a grid of elements (full check on small shapes).
    const std::int64_t ri = std::max<std::int64_t>(1, tc.m / 7);
    const std::int64_t rj = std::max<std::int64_t>(1, tc.n / 7);
    for (std::int64_t i = 0; i < tc.m; i += ri) {
      for (std::int64_t j = 0; j < tc.n; j += rj) {
        ASSERT_NEAR(c.read_element(i, j),
                    ref[static_cast<std::size_t>(i * tc.n + j)], 1e-8)
            << "C[" << i << "][" << j << "]";
      }
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmCases,
    ::testing::Values(Case{1, 8, 8, 8, 4, 1.0, 0.0},
                      Case{4, 16, 16, 16, 8, 1.0, 0.0},
                      Case{4, 24, 12, 18, 5, 2.0, 0.5},   // rectangular, odd panel
                      Case{6, 30, 20, 10, 32, 1.0, 1.0},  // panel > k
                      Case{8, 32, 32, 32, 8, -1.0, 2.0}));

TEST(Dgemm, ShapeMismatchRejected) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 2;
  armci::World world(cfg);
  EXPECT_THROW(world.spmd([](Comm& comm) {
                 GlobalArray a(comm, 8, 9);
                 GlobalArray b(comm, 8, 8);  // inner mismatch
                 GlobalArray c(comm, 8, 8);
                 dgemm(1.0, a, b, 0.0, c);
               }),
               Error);
}

TEST(Dgemm, OverlapKeepsPerRegionFenceCountZero) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  cfg.armci.consistency = armci::ConsistencyMode::kPerRegion;
  armci::World world(cfg);
  world.spmd([](Comm& comm) {
    GlobalArray a(comm, 16, 16);
    GlobalArray b(comm, 16, 16);
    GlobalArray c(comm, 16, 16);
    a.fill_local([](std::int64_t, std::int64_t) { return 1.0; });
    b.fill_local([](std::int64_t, std::int64_t) { return 1.0; });
    c.fill_local(0.0);
    dgemm(1.0, a, b, 0.0, c);
    EXPECT_EQ(comm.stats().forced_fences, 0u)
        << "reads of A/B must not fence writes to C (S III-E)";
    comm.barrier();
  });
}

}  // namespace
}  // namespace pgasq::ga
