// Timeline + critical-path observability: bucket determinism across
// reruns and seeds, the zero-cost-when-disabled byte-identity
// guarantee, the exact segment-sum attribution identity, series-cap
// truncation, and obs.timeline* config typo rejection.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "coll/coll.hpp"
#include "core/comm.hpp"
#include "core/report.hpp"
#include "core/report_json.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "pami/machine.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace pgasq {
namespace {

/// Small mixed workload touching the instrumented paths: rdma put /
/// get, fetch_add, a collective, async-thread progress.
void mixed_workload(armci::Comm& comm) {
  auto& mem = comm.malloc_collective(4096);
  auto* buf = static_cast<std::byte*>(comm.malloc_local(4096));
  const int peer = (comm.rank() + 1) % comm.nprocs();
  comm.put(buf, mem.at(peer, 64), 256);
  comm.fence(peer);
  comm.get(mem.at(peer), buf, 256);
  comm.fetch_add(mem.at(0), 1);
  double x = comm.rank() == 0 ? 41.0 : 0.0;
  coll::CollEngine::of(comm).broadcast(&x, sizeof x, 0);
  EXPECT_EQ(x, 41.0);
  comm.barrier();
}

armci::WorldConfig timeline_config(std::uint64_t seed = 42) {
  armci::WorldConfig cfg;
  cfg.machine.num_ranks = 4;
  cfg.machine.seed = seed;
  cfg.machine.obs.timeline = true;
  cfg.machine.obs.timeline_bucket = from_us(25);
  cfg.machine.obs.critpath = true;
  cfg.armci.progress = armci::ProgressMode::kAsyncThread;
  cfg.armci.contexts_per_rank = 2;
  return cfg;
}

/// Config from "key=value" pairs (the CLI parser minus the CLI).
Config cfg_of(std::initializer_list<std::pair<std::string, std::string>> kvs) {
  Config c;
  for (const auto& [k, v] : kvs) c.set(k, v);
  return c;
}

TEST(Timeline, BucketsAreDeterministicAcrossRerunsAndSeeds) {
  // Same seed, two runs: the exported timeline is byte-identical.
  armci::World a(timeline_config());
  a.spmd(mixed_workload);
  armci::World b(timeline_config());
  b.spmd(mixed_workload);
  const obs::Timeline* ta = a.machine().timeline();
  const obs::Timeline* tb = b.machine().timeline();
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_GT(ta->num_series(), 0u);
  EXPECT_EQ(ta->to_json().dump(), tb->to_json().dump());
  EXPECT_EQ(ta->to_csv(), tb->to_csv());

  // A different machine seed may shift values, but the structure —
  // bucket width and which series exist — is workload-determined.
  armci::World c(timeline_config(/*seed=*/7));
  c.spmd(mixed_workload);
  const obs::Timeline* tc = c.machine().timeline();
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->bucket_width(), ta->bucket_width());
  const auto names_of = [](const obs::Json& doc) {
    std::set<std::string> names;
    const obs::Json& series = doc.at("series");
    for (std::size_t i = 0; i < series.size(); ++i)
      names.insert(series[i].at("name").as_string());
    return names;
  };
  EXPECT_EQ(names_of(ta->to_json()), names_of(tc->to_json()));
  // Bucket indices reconstruct virtual time: none may exceed the run.
  const obs::Json doc = ta->to_json();
  const obs::Json& series = doc.at("series");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const obs::Json& buckets = series[i].at("buckets");
    std::int64_t prev = -1;
    for (std::size_t j = 0; j < buckets.size(); ++j) {
      const std::int64_t idx = buckets[j][0].as_int();
      EXPECT_GT(idx, prev) << "buckets out of order in series "
                           << series[i].at("name").as_string();
      prev = idx;
      EXPECT_LE(idx * ta->bucket_width(), a.elapsed());
    }
  }
}

TEST(Timeline, DisabledRunsAreByteIdenticalAndTimingUnchanged) {
  armci::WorldConfig off_cfg = timeline_config();
  off_cfg.machine.obs.timeline = false;
  off_cfg.machine.obs.critpath = false;

  // Off twice: the hooks are single pointer compares, and both the
  // human and the JSON report are byte-identical across reruns (the
  // in-process form of the bench_fig stdout identity, which check.sh's
  // timeline_gate asserts end to end on the real binaries).
  armci::World off1(off_cfg);
  off1.spmd(mixed_workload);
  armci::World off2(off_cfg);
  off2.spmd(mixed_workload);
  EXPECT_EQ(off1.machine().timeline(), nullptr);
  EXPECT_EQ(off1.machine().critpath(), nullptr);
  EXPECT_EQ(armci::render_report(off1), armci::render_report(off2));
  EXPECT_EQ(armci::render_json_report(off1).dump(),
            armci::render_json_report(off2).dump());
  const obs::Json off_doc = armci::render_json_report(off1);
  EXPECT_THROW(off_doc.at("timeline"), Error);
  EXPECT_THROW(off_doc.at("critpath"), Error);

  // On: observation is pure — virtual time and every metric are
  // unchanged; the report only gains the timeline/critpath sections.
  armci::World on(timeline_config());
  on.spmd(mixed_workload);
  EXPECT_EQ(on.elapsed(), off1.elapsed());
  const obs::Json on_doc = armci::render_json_report(on);
  EXPECT_EQ(on_doc.at("metrics").dump(), off_doc.at("metrics").dump());
  EXPECT_EQ(on_doc.at("timeline").at("schema").as_string(),
            "pgasq.timeline");
  EXPECT_EQ(on_doc.at("timeline").at("schema_version").as_int(),
            obs::Timeline::kSchemaVersion);
  EXPECT_EQ(on_doc.at("critpath").at("schema").as_string(),
            "pgasq.critpath");
}

TEST(Timeline, CritPathSegmentsSumToMeasuredLatency) {
  armci::World world(timeline_config());
  world.spmd(mixed_workload);
  const obs::CritPath* cp = world.machine().critpath();
  ASSERT_NE(cp, nullptr);
  EXPECT_GT(cp->legs(), 0u);
  // The attribution is an identity, not an estimate: inject-wait +
  // ser + wire + ack over all legs equals the measured sum of
  // (arrive - requested), in exact integer picoseconds.
  EXPECT_EQ(cp->segment_sum(), cp->total_latency());
  EXPECT_GE(cp->wire_wait_total(), cp->degraded_wire_wait());
  // No faults injected here, so no leg rode a degraded link.
  EXPECT_EQ(cp->degraded_wire_wait(), 0);
  const std::string table = cp->render();
  EXPECT_NE(table.find("critical path:"), std::string::npos);
}

TEST(Timeline, SeriesCapTruncatesWithWarn) {
  obs::Timeline tl(from_us(10), /*max_series=*/2);
  const auto a = tl.series("q.a", obs::Timeline::Kind::kGauge);
  const auto b = tl.series("q.b", obs::Timeline::Kind::kCounter);
  EXPECT_NE(a, obs::Timeline::kNone);
  EXPECT_NE(b, obs::Timeline::kNone);
  EXPECT_FALSE(tl.truncated());
  // Third registration hits the cap: WARNs once, flags truncated(),
  // and returns the no-op sentinel.
  const auto c = tl.series("q.c", obs::Timeline::Kind::kGauge);
  EXPECT_EQ(c, obs::Timeline::kNone);
  EXPECT_TRUE(tl.truncated());
  EXPECT_EQ(tl.num_series(), 2u);
  // Existing names still resolve after truncation; sampling into the
  // sentinel is a no-op, not a crash.
  EXPECT_EQ(tl.series("q.a", obs::Timeline::Kind::kGauge), a);
  tl.sample(c, from_us(1), 3.0);
  tl.count(c, from_us(1));
  tl.sample(a, from_us(1), 3.0);
  EXPECT_EQ(tl.gauge_peak("q.a"), 3.0);
  EXPECT_FALSE(tl.has("q.c"));
  // The export records the truncation so readers know the set is
  // incomplete.
  EXPECT_TRUE(tl.to_json().at("truncated").as_bool());
}

TEST(Timeline, ConfigTyposRejected) {
  pami::MachineConfig mc;
  EXPECT_THROW(
      pami::configure_observability(cfg_of({{"obs.timelin", "1"}}), mc),
      Error);
  EXPECT_THROW(pami::configure_observability(
                   cfg_of({{"obs.timeline_bucket_uss", "10"}}), mc),
               Error);
  EXPECT_THROW(
      pami::configure_observability(cfg_of({{"timeline.bucket_us", "10"}}),
                                    mc),
      Error);
  EXPECT_THROW(
      pami::configure_observability(cfg_of({{"obs.critpath_topk", "4"}}), mc),
      Error);
  pami::configure_observability(
      cfg_of({{"obs.timeline", "1"},
              {"obs.timeline_bucket_us", "25"},
              {"obs.timeline_max_series", "64"},
              {"obs.timeline_top", "4"},
              {"obs.timeline_csv", "/tmp/tl.csv"},
              {"obs.critpath", "1"},
              {"obs.critpath_top", "3"}}),
      mc);
  EXPECT_TRUE(mc.obs.timeline);
  EXPECT_EQ(mc.obs.timeline_bucket, from_us(25));
  EXPECT_EQ(mc.obs.timeline_max_series, 64);
  EXPECT_EQ(mc.obs.timeline_top, 4);
  EXPECT_EQ(mc.obs.timeline_csv, "/tmp/tl.csv");
  EXPECT_TRUE(mc.obs.critpath);
  EXPECT_EQ(mc.obs.critpath_top, 3);
}

}  // namespace
}  // namespace pgasq
